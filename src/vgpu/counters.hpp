#pragma once
// Per-CTA cost counters and per-kernel aggregate statistics.

#include <cstddef>
#include <cstdint>
#include <string>

#include "vgpu/device_properties.hpp"

namespace mps::vgpu {

/// Raw work counters accumulated by one CTA while a kernel runs.  All
/// charging goes through the Cta helpers (see cta.hpp); the counters are
/// converted to SM cycles after the kernel completes.
struct CtaCounters {
  std::uint64_t global_bytes = 0;    ///< coalesced traffic, bytes
  std::uint64_t gather_bytes = 0;    ///< uncoalesced traffic, bytes (sector-expanded)
  std::uint64_t shared_ops = 0;      ///< warp-wide shared memory accesses
  std::uint64_t warp_iters = 0;      ///< warp-lockstep ALU iterations
  std::uint64_t syncs = 0;           ///< CTA barriers
  /// Useful floating-point operations (multiply-adds count 2).  Purely
  /// observational — roofline attribution (telemetry/profile.hpp) reads
  /// it; cycles() below never does, so charging flops cannot perturb
  /// modeled time (ALU cost already rides warp_iters).
  std::uint64_t flops = 0;

  CtaCounters& operator+=(const CtaCounters& o) {
    global_bytes += o.global_bytes;
    gather_bytes += o.gather_bytes;
    shared_ops += o.shared_ops;
    warp_iters += o.warp_iters;
    syncs += o.syncs;
    flops += o.flops;
    return *this;
  }

  /// SM-cycles this CTA occupies one SM slot for.
  double cycles(const DeviceProperties& p) const {
    const double mem = static_cast<double>(global_bytes + gather_bytes) /
                       p.global_bytes_per_cycle_per_sm;
    const double compute = static_cast<double>(warp_iters) * p.alu_warp_iter_cycles +
                           static_cast<double>(shared_ops) * p.shared_op_cycles +
                           static_cast<double>(syncs) * p.sync_cycles;
    // Memory and compute overlap imperfectly; charge the max plus a fraction
    // of the smaller term (a standard roofline-with-overlap approximation).
    const double hi = mem > compute ? mem : compute;
    const double lo = mem > compute ? compute : mem;
    return hi + 0.2 * lo;
  }
};

/// Result of one kernel launch: modeled device time plus raw totals.
struct KernelStats {
  std::string name;
  int num_ctas = 0;
  double device_cycles = 0.0;  ///< modeled, includes launch overhead
  double modeled_ms = 0.0;
  double wall_ms = 0.0;        ///< host wall time (informational only)
  CtaCounters totals;          ///< summed over CTAs
  /// Telemetry correlation (telemetry/span.hpp): the active span context
  /// at launch and the wall start time relative to the tracer epoch.
  /// Zero / negative while the tracer is disabled — stamping them never
  /// affects modeled time (the zero-overhead contract).
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  double start_us = -1.0;

  KernelStats& operator+=(const KernelStats& o) {
    num_ctas += o.num_ctas;
    device_cycles += o.device_cycles;
    modeled_ms += o.modeled_ms;
    wall_ms += o.wall_ms;
    totals += o.totals;
    return *this;
  }
};

}  // namespace mps::vgpu
