#pragma once
// Persistent host thread pool used to execute CTAs in parallel.
//
// The pool exists only to make *functional* execution fast on multi-core
// hosts; all *timing* comes from the analytic model, so results are
// byte-identical regardless of worker count (every CTA writes disjoint
// output and counters are indexed by CTA id).
//
// Two execution modes share the workers:
//
//   * parallel_for — the fork/join mode every kernel launch uses.  The
//     calling thread participates, so it works even on a pool with zero
//     spawned workers.
//   * try_post     — one-off tasks (the serving engine's batch dispatch,
//     src/serve).  Tasks run on spawned workers; on a pool with no
//     workers the task runs inline on the posting thread.
//
// Shutdown ordering contract (the serving engine's drain semantics are
// built on it): shutdown() first closes admission — every try_post that
// starts after shutdown() began returns false, decided under the pool
// mutex, never by racing the worker join — then drains every task that
// was already accepted, and only then joins the workers.  A task is thus
// always either (a) rejected at post time or (b) run to completion;
// nothing is silently dropped on the floor during destruction.
// parallel_for on a shut-down pool degrades to inline serial execution.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mps::vgpu {

class ThreadPool {
 public:
  /// `num_threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Run body(i) for every i in [0, n), dynamically load-balanced.
  /// Blocks until all iterations complete.  Exceptions thrown by `body`
  /// are captured and the first one is rethrown on the calling thread.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Enqueue a one-off task for a worker thread.  Returns false — and
  /// does not take the task — once shutdown() has begun; the decision is
  /// made under the pool mutex so posting never races the worker join.
  /// Tasks must not throw (the serving engine routes failures through
  /// per-request promises).  On a pool with no spawned workers the task
  /// runs inline before try_post returns.
  bool try_post(std::function<void()> task);

  /// Stop accepting tasks, run every already-accepted task to
  /// completion, then join the workers.  Idempotent; called by the
  /// destructor.  parallel_for afterwards runs inline.
  void shutdown();

  /// True once shutdown() has begun (tasks are being rejected).
  bool stopping() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closing_;
  }

 private:
  struct Job {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next{0};
    /// Workers currently inside run_job for this job; guarded by mutex_.
    int in_flight = 0;
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void worker_loop();
  void run_job(Job& job);

  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Job* current_ = nullptr;
  std::uint64_t generation_ = 0;
  std::deque<std::function<void()>> tasks_;  ///< accepted one-off tasks
  int tasks_running_ = 0;                    ///< popped but not yet finished
  bool closing_ = false;  ///< admission closed; accepted tasks still drain
  bool stop_ = false;     ///< workers may exit once tasks_ is empty
};

/// Process-wide pool sized from MPS_THREADS (default hardware concurrency).
ThreadPool& global_pool();

}  // namespace mps::vgpu
