#pragma once
// Persistent host thread pool used to execute CTAs in parallel.
//
// The pool exists only to make *functional* execution fast on multi-core
// hosts; all *timing* comes from the analytic model, so results are
// byte-identical regardless of worker count (every CTA writes disjoint
// output and counters are indexed by CTA id).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mps::vgpu {

class ThreadPool {
 public:
  /// `num_threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Run body(i) for every i in [0, n), dynamically load-balanced.
  /// Blocks until all iterations complete.  Exceptions thrown by `body`
  /// are captured and the first one is rethrown on the calling thread.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  struct Job {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next{0};
    /// Workers currently inside run_job for this job; guarded by mutex_.
    int in_flight = 0;
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void worker_loop();
  void run_job(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Job* current_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

/// Process-wide pool sized from MPS_THREADS (default hardware concurrency).
ThreadPool& global_pool();

}  // namespace mps::vgpu
