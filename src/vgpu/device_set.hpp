#pragma once
// vgpu::DeviceSet — a modeled multi-GPU fleet (docs/sharding.md).
//
// One Device models one GPU; a DeviceSet models a host with several,
// possibly heterogeneous, GPUs: each slot owns its Device (memory model,
// fault injector, chaos state, kernel log) plus the immutable metadata a
// scheduler needs — the slot's DeviceProperties, its profile name, and a
// modeled throughput weight (global-memory bytes/ns, the right proxy for
// the memory-bound sparse kernels this repository serves).
//
// Slots are stable: replace(i) provisions a fresh Device with the SAME
// properties in slot i and hands back the old one, which is how the
// serving engine quarantines a chaos-lost device without disturbing the
// shard placement keyed on slot ordinals (serve::Engine failover).
//
// Fleet shape comes from a spec string (MPS_SERVE_DEVICE_SPEC):
//
//   spec     := entry (',' entry)*
//   entry    := profile [ '*' count ]
//   profile  := "titan" | "fast" | "slow"
//
// e.g. "fast*2,slow*2" (the heterogeneous bench fleet), "titan*4", or a
// single bare profile which broadcasts to the requested fleet size.
// Parsing is strict — an unknown profile, malformed count, or a spec
// whose expanded length disagrees with the requested device count raises
// InvalidInputError naming the source (the env variable when the spec
// came from one).

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "vgpu/device.hpp"
#include "vgpu/device_properties.hpp"

namespace mps::vgpu {

/// One parsed spec entry: the profile name and its properties.
struct DeviceSpecEntry {
  std::string profile;
  DeviceProperties props;
};

/// Named profile lookup ("titan" | "fast" | "slow"); throws
/// InvalidInputError naming `source` for anything else.
DeviceProperties device_profile(const std::string& name,
                                const std::string& source = "device profile");

/// Relative placement weight of a device: modeled global-memory
/// bandwidth in bytes/ns.  titan ~282, fast ~662, slow ~110.
double throughput_weight(const DeviceProperties& p);

/// Parse a fleet spec into exactly `num_devices` entries (see the
/// grammar above).  An empty spec yields all-titan; a single bare
/// profile broadcasts; otherwise the expanded entry count must equal
/// `num_devices`.  Strict: malformed input throws InvalidInputError
/// naming `source`.
std::vector<DeviceSpecEntry> parse_device_spec(
    const std::string& spec, int num_devices,
    const std::string& source = "device spec");

class DeviceSet {
 public:
  /// Build the fleet: one fresh Device per spec entry.
  explicit DeviceSet(std::vector<DeviceSpecEntry> spec);

  DeviceSet(const DeviceSet&) = delete;
  DeviceSet& operator=(const DeviceSet&) = delete;

  std::size_t size() const { return slots_.size(); }
  Device& device(std::size_t i) { return *slots_[i].device; }
  const Device& device(std::size_t i) const { return *slots_[i].device; }
  const DeviceProperties& props(std::size_t i) const {
    return slots_[i].props;
  }
  const std::string& profile(std::size_t i) const {
    return slots_[i].profile;
  }
  /// Modeled throughput weight of slot i (throughput_weight(props(i))).
  double weight(std::size_t i) const { return slots_[i].weight; }
  /// Sum of every slot's weight.
  double total_weight() const;

  /// Provision a fresh Device with slot i's properties (the replacement
  /// for a chaos-lost device; MPS_FAULT_* env knobs apply to it like any
  /// construction) and return the old Device.  The caller typically
  /// keeps the old one alive until plans accounted against it die.
  std::unique_ptr<Device> replace(std::size_t i);

 private:
  struct Slot {
    std::string profile;
    DeviceProperties props;
    double weight = 0.0;
    std::unique_ptr<Device> device;
  };
  std::vector<Slot> slots_;
};

}  // namespace mps::vgpu
