#include "vgpu/thread_pool.hpp"

#include <cstdint>
#include <utility>

#include "util/env.hpp"

namespace mps::vgpu {

ThreadPool::ThreadPool(unsigned num_threads) {
  unsigned n = num_threads ? num_threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  // The calling thread participates, so spawn n-1 workers.
  for (unsigned i = 1; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  std::vector<std::thread> to_join;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    closing_ = true;  // admission closed: try_post now returns false
    // Drain: every task accepted before admission closed still runs.
    done_cv_.wait(lock, [&] { return tasks_.empty() && tasks_running_ == 0; });
    stop_ = true;
    to_join.swap(workers_);  // parallel_for falls back to inline from here
  }
  cv_.notify_all();
  for (auto& w : to_join) w.join();
}

bool ThreadPool::try_post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closing_) return false;
    if (!workers_.empty()) {
      tasks_.push_back(std::move(task));
      cv_.notify_one();
      return true;
    }
  }
  // No spawned workers: the posting thread is the executor.
  task();
  return true;
}

void ThreadPool::run_job(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) break;
    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        (*job.body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.failed.exchange(true)) job.error = std::current_exception();
      }
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return stop_ || !tasks_.empty() || (current_ && generation_ != seen);
      });
      if (current_ && generation_ != seen) {
        seen = generation_;
        job = current_;
        job->in_flight += 1;
      } else if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop_front();
        tasks_running_ += 1;
      } else if (stop_) {
        return;
      } else {
        continue;
      }
    }
    if (job) {
      run_job(*job);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        job->in_flight -= 1;
      }
      done_cv_.notify_all();
    } else {
      task();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_running_ -= 1;
      }
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  bool inline_run;
  {
    // workers_ is mutated under mutex_ (shutdown swaps it out), so the
    // emptiness check must hold the lock.  Inline covers single-iteration
    // launches, zero-worker pools, and pools already shut down.
    std::lock_guard<std::mutex> lock(mutex_);
    inline_run = workers_.empty() || n == 1;
  }
  if (inline_run) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  Job job;
  job.n = n;
  job.body = &body;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = &job;
    ++generation_;
  }
  cv_.notify_all();
  // The calling thread participates; when its run_job returns every index
  // has been claimed, but workers may still be finishing theirs.
  run_job(job);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    current_ = nullptr;  // no new worker may pick the job up
    done_cv_.wait(lock, [&] { return job.in_flight == 0; });
  }
  if (job.failed.load()) std::rethrow_exception(job.error);
}

ThreadPool& global_pool() {
  static ThreadPool pool(static_cast<unsigned>(util::env_int("MPS_THREADS", 0)));
  return pool;
}

}  // namespace mps::vgpu
