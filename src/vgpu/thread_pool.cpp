#include "vgpu/thread_pool.hpp"

#include <cstdint>

#include "util/env.hpp"

namespace mps::vgpu {

ThreadPool::ThreadPool(unsigned num_threads) {
  unsigned n = num_threads ? num_threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  // The calling thread participates, so spawn n-1 workers.
  for (unsigned i = 1; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_job(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) break;
    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        (*job.body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.failed.exchange(true)) job.error = std::current_exception();
      }
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || (current_ && generation_ != seen); });
      if (stop_) return;
      seen = generation_;
      job = current_;
      job->in_flight += 1;
    }
    run_job(*job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job->in_flight -= 1;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  Job job;
  job.n = n;
  job.body = &body;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = &job;
    ++generation_;
  }
  cv_.notify_all();
  // The calling thread participates; when its run_job returns every index
  // has been claimed, but workers may still be finishing theirs.
  run_job(job);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    current_ = nullptr;  // no new worker may pick the job up
    done_cv_.wait(lock, [&] { return job.in_flight == 0; });
  }
  if (job.failed.load()) std::rethrow_exception(job.error);
}

ThreadPool& global_pool() {
  static ThreadPool pool(static_cast<unsigned>(util::env_int("MPS_THREADS", 0)));
  return pool;
}

}  // namespace mps::vgpu
