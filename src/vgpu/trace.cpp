#include "vgpu/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>

#include "util/error.hpp"

namespace mps::vgpu {

namespace {

// Escapes for a JSON string literal.  Control bytes AND non-ASCII bytes
// are \u-escaped: kernel names are internal identifiers, but a corrupted
// or adversarial name must still produce output that strict parsers
// (python -m json.tool in CI) accept, so nothing that could break UTF-8
// validation is passed through raw.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (u < 0x20 || u >= 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// "ph":"M" metadata event naming a process or thread in the trace UI.
void write_name_meta(std::ostream& out, const char* what, int pid, int tid,
                     const std::string& name, bool& first) {
  if (!first) out << ',';
  first = false;
  out << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << json_escape(name)
      << "\"}}";
}

void write_kernel_event(std::ostream& out, const KernelStats& k, int pid,
                        double ts_us, bool& first) {
  const double dur_us = k.modeled_ms * 1e3;
  if (!first) out << ',';
  first = false;
  out << "{\"name\":\"" << json_escape(k.name)
      << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":1"
      << ",\"ts\":" << ts_us << ",\"dur\":" << dur_us << ",\"args\":{"
      << "\"num_ctas\":" << k.num_ctas
      << ",\"device_cycles\":" << k.device_cycles
      << ",\"global_bytes\":" << k.totals.global_bytes
      << ",\"gather_bytes\":" << k.totals.gather_bytes
      << ",\"shared_ops\":" << k.totals.shared_ops
      << ",\"warp_iters\":" << k.totals.warp_iters
      << ",\"wall_ms\":" << k.wall_ms << ",\"trace_id\":" << k.trace_id
      << ",\"span_id\":" << k.span_id << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& out, const Device& device) {
  out << "{\"traceEvents\":[";
  bool first = true;
  write_name_meta(out, "process_name", 1, 0, "mps virtual GPU", first);
  write_name_meta(out, "thread_name", 1, 1, "modeled kernels", first);
  double cursor_us = 0.0;
  for (const auto& k : device.log()) {
    write_kernel_event(out, k, /*pid=*/1, cursor_us, first);
    cursor_us += k.modeled_ms * 1e3;
  }
  out << "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
      << "\"device\":\"mps virtual GPU\",\"kernels\":" << device.log().size()
      << "}}";
}

void write_chrome_trace_file(const std::string& path, const Device& device) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open trace file " + path);
  write_chrome_trace(out, device);
  if (!out) throw IoError("failed writing trace file " + path);
}

void write_perfetto_trace(std::ostream& out, std::span<const TraceTrack> tracks,
                          const telemetry::Tracer& tracer) {
  const std::vector<telemetry::SpanRecord> spans = tracer.snapshot();

  // Span tracks become pids 1..N in first-seen order; device tracks follow.
  std::map<std::string, int> span_pids;
  std::vector<std::string> span_track_names;
  for (const auto& rec : spans) {
    if (span_pids.emplace(rec.track, 0).second) {
      span_track_names.push_back(rec.track);
    }
  }
  int next_pid = 1;
  for (const auto& name : span_track_names) span_pids[name] = next_pid++;

  out << "{\"traceEvents\":[";
  bool first = true;

  for (const auto& name : span_track_names) {
    write_name_meta(out, "process_name", span_pids[name], 0, name, first);
  }
  // Thread-name metadata: one per (track, tid) pair observed in the spans.
  std::map<std::pair<int, std::uint32_t>, bool> tids_seen;
  for (const auto& rec : spans) {
    const int pid = span_pids[rec.track];
    if (tids_seen.emplace(std::make_pair(pid, rec.tid), true).second) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "lane %u", rec.tid);
      write_name_meta(out, "thread_name", pid, static_cast<int>(rec.tid), buf,
                      first);
    }
  }

  for (const auto& rec : spans) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(rec.name)
        << "\",\"ph\":\"X\",\"pid\":" << span_pids[rec.track]
        << ",\"tid\":" << rec.tid << ",\"ts\":" << rec.start_us
        << ",\"dur\":" << rec.dur_us << ",\"args\":{"
        << "\"trace_id\":" << rec.trace_id << ",\"span_id\":" << rec.span_id
        << ",\"parent_id\":" << rec.parent_id << ",\"status\":\""
        << json_escape(rec.status) << "\"}}";
  }

  std::size_t kernel_count = 0;
  for (const auto& track : tracks) {
    const int pid = next_pid++;
    write_name_meta(out, "process_name", pid, 0, track.name, first);
    write_name_meta(out, "thread_name", pid, 1, "modeled kernels", first);
    if (track.device == nullptr) continue;
    // Stamped kernels sit at their wall start so they nest under the host
    // span that launched them; unstamped ones (tracer off at launch) fall
    // back to a back-to-back modeled layout after the last stamped event.
    double cursor_us = 0.0;
    for (const auto& k : track.device->log()) {
      const double ts_us = k.start_us >= 0.0 ? k.start_us : cursor_us;
      write_kernel_event(out, k, pid, ts_us, first);
      cursor_us = std::max(cursor_us, ts_us + k.modeled_ms * 1e3);
      ++kernel_count;
    }
  }

  out << "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
      << "\"device\":\"mps virtual GPU\",\"spans\":" << spans.size()
      << ",\"kernels\":" << kernel_count << "}}";
}

void write_perfetto_trace_file(const std::string& path,
                               std::span<const TraceTrack> tracks,
                               const telemetry::Tracer& tracer) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open trace file " + path);
  write_perfetto_trace(out, tracks, tracer);
  if (!out) throw IoError("failed writing trace file " + path);
}

}  // namespace mps::vgpu
