#include "vgpu/trace.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "util/error.hpp"

namespace mps::vgpu {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void write_chrome_trace(std::ostream& out, const Device& device) {
  out << "{\"traceEvents\":[";
  double cursor_us = 0.0;
  bool first = true;
  for (const auto& k : device.log()) {
    const double dur_us = k.modeled_ms * 1e3;
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(k.name)
        << "\",\"ph\":\"X\",\"pid\":1,\"tid\":1"
        << ",\"ts\":" << cursor_us << ",\"dur\":" << dur_us << ",\"args\":{"
        << "\"num_ctas\":" << k.num_ctas
        << ",\"device_cycles\":" << k.device_cycles
        << ",\"global_bytes\":" << k.totals.global_bytes
        << ",\"gather_bytes\":" << k.totals.gather_bytes
        << ",\"shared_ops\":" << k.totals.shared_ops
        << ",\"warp_iters\":" << k.totals.warp_iters
        << ",\"wall_ms\":" << k.wall_ms << "}}";
    cursor_us += dur_us;
  }
  out << "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
      << "\"device\":\"mps virtual GPU\",\"kernels\":" << device.log().size()
      << "}}";
}

void write_chrome_trace_file(const std::string& path, const Device& device) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open trace file " + path);
  write_chrome_trace(out, device);
  if (!out) throw IoError("failed writing trace file " + path);
}

}  // namespace mps::vgpu
