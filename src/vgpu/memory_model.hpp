#pragma once
// Device global-memory accounting.
//
// Functional data lives in ordinary host vectors, but every device-resident
// array and temporary is *accounted* against the virtual GPU's capacity so
// that workloads which exceeded the Titan's 6 GiB in the paper (Dense and
// LP under sort-based SpGEMM, Fig 9) fail here in the same way.
//
// An optional FaultInjector (fault_injector.hpp) observes every reserve()
// and can deterministically force one to fail — the substrate for the
// exception-safety sweep and the MPS_FAULT_* environment knobs.

#include <cstddef>
#include <mutex>
#include <string>

#include "util/error.hpp"
#include "vgpu/fault_injector.hpp"

namespace mps::vgpu {

/// Thrown when a kernel's working set exceeds device capacity, or when an
/// attached FaultInjector forces an allocation to fail (`injected()`).
class DeviceOomError : public mps::Error {
 public:
  DeviceOomError(std::size_t requested, std::size_t in_use, std::size_t capacity,
                 bool injected = false)
      : mps::Error(std::string(injected ? "injected device allocation failure"
                                        : "virtual device out of memory") +
                   ": requested " + std::to_string(requested) + " B with " +
                   std::to_string(in_use) + " B in use of " +
                   std::to_string(capacity) + " B"),
        requested_(requested),
        injected_(injected) {}
  std::size_t requested() const { return requested_; }
  bool injected() const { return injected_; }

 private:
  std::size_t requested_;
  bool injected_;
};

class MemoryModel {
 public:
  explicit MemoryModel(std::size_t capacity) : capacity_(capacity) {}

  /// Movable so Device stays movable; the internal mutex is not moved
  /// (moving a model that other threads are concurrently using is a
  /// caller bug, as for any standard container).
  MemoryModel(MemoryModel&& o) noexcept
      : capacity_(o.capacity_),
        in_use_(o.in_use_),
        peak_(o.peak_),
        fault_(o.fault_) {}
  MemoryModel& operator=(MemoryModel&& o) noexcept {
    if (this != &o) {
      capacity_ = o.capacity_;
      in_use_ = o.in_use_;
      peak_ = o.peak_;
      fault_ = o.fault_;
    }
    return *this;
  }
  MemoryModel(const MemoryModel&) = delete;
  MemoryModel& operator=(const MemoryModel&) = delete;

  /// Account `bytes` of device memory.  `window`/`window_bytes` optionally
  /// register the live host storage backing the allocation so an attached
  /// FaultInjector can corrupt it (bit-flip faults); when `window` is
  /// given with `window_bytes` 0, the window spans `bytes`.  The window is
  /// used transiently during this call and never retained.
  ///
  /// reserve/release are internally synchronized: the serving engine
  /// (src/serve) destroys cached plans — and with them their
  /// ScopedDeviceAllocs — from whichever worker drops the last reference,
  /// concurrently with allocations on the owning device.
  void reserve(std::size_t bytes, void* window = nullptr,
               std::size_t window_bytes = 0);
  void release(std::size_t bytes) noexcept;

  std::size_t in_use() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return in_use_;
  }
  std::size_t peak() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_;
  }
  std::size_t capacity() const { return capacity_; }
  void reset_peak() {
    std::lock_guard<std::mutex> lock(mutex_);
    peak_ = in_use_;
  }

  /// Attach a fault injector (non-owning; nullptr detaches).  Every
  /// subsequent reserve() is reported to it and may be forced to fail.
  void attach_fault_injector(FaultInjector* injector) { fault_ = injector; }
  FaultInjector* fault_injector() const { return fault_; }

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::size_t peak_ = 0;
  FaultInjector* fault_ = nullptr;
};

/// RAII accounting for one device allocation.  The optional window
/// registers the backing host storage with the fault injector (see
/// MemoryModel::reserve); it is not stored, so moving the underlying
/// vectors after construction is safe.
class ScopedDeviceAlloc {
 public:
  ScopedDeviceAlloc(MemoryModel& model, std::size_t bytes,
                    void* window = nullptr, std::size_t window_bytes = 0)
      : model_(&model), bytes_(bytes) {
    model_->reserve(bytes_, window, window_bytes);
  }
  ~ScopedDeviceAlloc() {
    if (model_) model_->release(bytes_);
  }
  ScopedDeviceAlloc(ScopedDeviceAlloc&& o) noexcept
      : model_(o.model_), bytes_(o.bytes_) {
    o.model_ = nullptr;
  }
  ScopedDeviceAlloc& operator=(ScopedDeviceAlloc&& o) noexcept {
    if (this != &o) {
      if (model_) model_->release(bytes_);
      model_ = o.model_;
      bytes_ = o.bytes_;
      o.model_ = nullptr;
    }
    return *this;
  }
  ScopedDeviceAlloc(const ScopedDeviceAlloc&) = delete;
  ScopedDeviceAlloc& operator=(const ScopedDeviceAlloc&) = delete;

  std::size_t bytes() const { return bytes_; }

 private:
  MemoryModel* model_;
  std::size_t bytes_;
};

}  // namespace mps::vgpu
