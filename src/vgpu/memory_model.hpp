#pragma once
// Device global-memory accounting.
//
// Functional data lives in ordinary host vectors, but every device-resident
// array and temporary is *accounted* against the virtual GPU's capacity so
// that workloads which exceeded the Titan's 6 GiB in the paper (Dense and
// LP under sort-based SpGEMM, Fig 9) fail here in the same way.

#include <cstddef>
#include <stdexcept>
#include <string>

namespace mps::vgpu {

/// Thrown when a kernel's working set exceeds device capacity.
class DeviceOomError : public std::runtime_error {
 public:
  DeviceOomError(std::size_t requested, std::size_t in_use, std::size_t capacity)
      : std::runtime_error("virtual device out of memory: requested " +
                           std::to_string(requested) + " B with " +
                           std::to_string(in_use) + " B in use of " +
                           std::to_string(capacity) + " B"),
        requested_(requested) {}
  std::size_t requested() const { return requested_; }

 private:
  std::size_t requested_;
};

class MemoryModel {
 public:
  explicit MemoryModel(std::size_t capacity) : capacity_(capacity) {}

  void reserve(std::size_t bytes);
  void release(std::size_t bytes) noexcept;

  std::size_t in_use() const { return in_use_; }
  std::size_t peak() const { return peak_; }
  std::size_t capacity() const { return capacity_; }
  void reset_peak() { peak_ = in_use_; }

 private:
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::size_t peak_ = 0;
};

/// RAII accounting for one device allocation.
class ScopedDeviceAlloc {
 public:
  ScopedDeviceAlloc(MemoryModel& model, std::size_t bytes)
      : model_(&model), bytes_(bytes) {
    model_->reserve(bytes_);
  }
  ~ScopedDeviceAlloc() {
    if (model_) model_->release(bytes_);
  }
  ScopedDeviceAlloc(ScopedDeviceAlloc&& o) noexcept
      : model_(o.model_), bytes_(o.bytes_) {
    o.model_ = nullptr;
  }
  ScopedDeviceAlloc& operator=(ScopedDeviceAlloc&& o) noexcept {
    if (this != &o) {
      if (model_) model_->release(bytes_);
      model_ = o.model_;
      bytes_ = o.bytes_;
      o.model_ = nullptr;
    }
    return *this;
  }
  ScopedDeviceAlloc(const ScopedDeviceAlloc&) = delete;
  ScopedDeviceAlloc& operator=(const ScopedDeviceAlloc&) = delete;

  std::size_t bytes() const { return bytes_; }

 private:
  MemoryModel* model_;
  std::size_t bytes_;
};

}  // namespace mps::vgpu
