#include "vgpu/memory_model.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"

namespace mps::vgpu {

namespace {

/// Registry handles cached once; increments after that are lock-free
/// (docs/observability.md naming conventions).
struct MemMetrics {
  telemetry::Gauge& peak_bytes =
      telemetry::metrics().gauge("vgpu.mem.peak_bytes");
  telemetry::Counter& oom =
      telemetry::metrics().counter("vgpu.mem.oom_errors");
  telemetry::Counter& injected =
      telemetry::metrics().counter("vgpu.faults.injected_alloc_failures");
};

MemMetrics& mem_metrics() {
  static MemMetrics m;
  return m;
}

}  // namespace

void MemoryModel::reserve(std::size_t bytes, void* window,
                          std::size_t window_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fault_ && fault_->lost()) {
    // A lost device can never allocate again; distinct from OOM so callers
    // fail over instead of retrying in place.
    throw DeviceLostError("device lost (chaos): refusing allocation of " +
                          std::to_string(bytes) + " B");
  }
  if (window != nullptr && window_bytes == 0) window_bytes = bytes;
  if (fault_ && fault_->on_reserve(bytes, window, window_bytes)) {
    mem_metrics().injected.add();
    throw DeviceOomError(bytes, in_use_, capacity_, /*injected=*/true);
  }
  if (in_use_ + bytes > capacity_) {
    mem_metrics().oom.add();
    throw DeviceOomError(bytes, in_use_, capacity_);
  }
  in_use_ += bytes;
  peak_ = std::max(peak_, in_use_);
  // Process-wide high-water mark across every device's memory model.
  mem_metrics().peak_bytes.update_max(static_cast<double>(peak_));
}

void MemoryModel::release(std::size_t bytes) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  in_use_ = bytes > in_use_ ? 0 : in_use_ - bytes;
}

}  // namespace mps::vgpu
