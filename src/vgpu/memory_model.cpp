#include "vgpu/memory_model.hpp"

#include <algorithm>

namespace mps::vgpu {

void MemoryModel::reserve(std::size_t bytes, void* window,
                          std::size_t window_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (window != nullptr && window_bytes == 0) window_bytes = bytes;
  if (fault_ && fault_->on_reserve(bytes, window, window_bytes)) {
    throw DeviceOomError(bytes, in_use_, capacity_, /*injected=*/true);
  }
  if (in_use_ + bytes > capacity_) throw DeviceOomError(bytes, in_use_, capacity_);
  in_use_ += bytes;
  peak_ = std::max(peak_, in_use_);
}

void MemoryModel::release(std::size_t bytes) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  in_use_ = bytes > in_use_ ? 0 : in_use_ - bytes;
}

}  // namespace mps::vgpu
