#pragma once
// Analytic cost model for the *sequential CPU* baselines.
//
// Figures 7 and 9 report speedup of each GPU scheme over a single-threaded
// CPU implementation (i7-3820, 3.6 GHz).  Mixing measured host wall time
// with modeled GPU time would make the ratios depend on whatever machine
// this repository happens to run on, so the CPU reference is costed through
// the same style of analytic model: the sequential kernels count the
// operations and bytes they actually execute and the model converts them to
// milliseconds.

#include <cstdint>

namespace mps::vgpu {

struct CpuProperties {
  double clock_ghz = 3.6;       ///< i7-3820 (paper Table I)
  double ops_per_cycle = 2.0;   ///< sustained scalar uops incl. branches
  /// Effective streaming bandwidth ~12.8 GB/s => ~3.6 B/cycle; random
  /// accesses are charged a full cache line.
  double bytes_per_cycle = 3.6;
  std::uint64_t cache_line_bytes = 64;
};

/// Accumulator the sequential kernels charge as they run.
class CpuCost {
 public:
  explicit CpuCost(CpuProperties props = CpuProperties{}) : props_(props) {}

  void charge_ops(std::uint64_t n) { ops_ += n; }
  /// Sequentially streamed bytes.
  void charge_stream(std::uint64_t bytes) { stream_bytes_ += bytes; }
  /// Random accesses; each costs one cache line of bandwidth.
  void charge_random(std::uint64_t count) {
    stream_bytes_ += count * props_.cache_line_bytes;
  }

  std::uint64_t ops() const { return ops_; }
  std::uint64_t bytes() const { return stream_bytes_; }

  double cycles() const {
    const double compute = static_cast<double>(ops_) / props_.ops_per_cycle;
    const double mem = static_cast<double>(stream_bytes_) / props_.bytes_per_cycle;
    const double hi = compute > mem ? compute : mem;
    const double lo = compute > mem ? mem : compute;
    return hi + 0.2 * lo;  // same overlap approximation as the GPU model
  }

  double modeled_ms() const { return cycles() / (props_.clock_ghz * 1e6); }

  const CpuProperties& props() const { return props_; }

 private:
  CpuProperties props_;
  std::uint64_t ops_ = 0;
  std::uint64_t stream_bytes_ = 0;
};

}  // namespace mps::vgpu
