#include "vgpu/chaos.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/env.hpp"
#include "util/rng.hpp"

namespace mps::vgpu {

namespace {

[[noreturn]] void bad_script(const std::string& source, const std::string& tok,
                             const std::string& why) {
  throw mps::InvalidInputError(source + ": bad chaos event \"" + tok +
                               "\": " + why);
}

// "key=value" pairs from the trigger/param section of one event token.
struct KeyValue {
  std::string key;
  std::string value;
};

std::vector<KeyValue> split_pairs(const std::string& s) {
  std::vector<KeyValue> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string part =
        s.substr(pos, comma == std::string::npos ? std::string::npos
                                                 : comma - pos);
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0) {
      out.push_back({part, ""});  // caller reports the malformed pair
    } else {
      out.push_back({part.substr(0, eq), part.substr(eq + 1)});
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

long long parse_ll(const std::string& source, const std::string& tok,
                   const std::string& value, long long min) {
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(value.c_str(), &end, 0);
  if (end == value.c_str() || !end || *end != '\0' || errno == ERANGE ||
      parsed < min)
    bad_script(source, tok, "\"" + value + "\" is not an integer >= " +
                                std::to_string(min));
  return parsed;
}

double parse_dbl(const std::string& source, const std::string& tok,
                 const std::string& value, double min) {
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || !end || *end != '\0' || errno == ERANGE ||
      !(parsed >= min))
    bad_script(source, tok, "\"" + value + "\" is not a number >= " +
                                std::to_string(min));
  return parsed;
}

ChaosEvent parse_event(const std::string& source, const std::string& tok) {
  // <verb>[:dev=D]@<trigger>=N[,param=V...]
  const std::size_t at = tok.find('@');
  if (at == std::string::npos)
    bad_script(source, tok, "missing '@trigger=value'");
  std::string head = tok.substr(0, at);
  const std::string tail = tok.substr(at + 1);

  ChaosEvent ev;
  const std::size_t colon = head.find(':');
  if (colon != std::string::npos) {
    const std::string dev = head.substr(colon + 1);
    head = head.substr(0, colon);
    if (dev.rfind("dev=", 0) != 0)
      bad_script(source, tok, "expected ':dev=D', got ':" + dev + "'");
    ev.device = static_cast<int>(parse_ll(source, tok, dev.substr(4), 0));
  }

  if (head == "lose") {
    ev.kind = ChaosEvent::Kind::kDeviceLoss;
  } else if (head == "straggle") {
    ev.kind = ChaosEvent::Kind::kStraggler;
  } else if (head == "oom") {
    ev.kind = ChaosEvent::Kind::kAllocFail;
  } else if (head == "flip") {
    ev.kind = ChaosEvent::Kind::kBitFlip;
  } else {
    bad_script(source, tok,
               "unknown verb \"" + head +
                   "\" (want lose | straggle | oom | flip)");
  }

  bool have_trigger = false;
  for (const KeyValue& kv : split_pairs(tail)) {
    if (kv.value.empty())
      bad_script(source, tok, "malformed pair \"" + kv.key + "\"");
    if (kv.key == "launch" && (ev.kind == ChaosEvent::Kind::kDeviceLoss ||
                               ev.kind == ChaosEvent::Kind::kStraggler)) {
      ev.at_launch = parse_ll(source, tok, kv.value, 1);
      have_trigger = true;
    } else if (kv.key == "ms" && ev.kind == ChaosEvent::Kind::kDeviceLoss) {
      ev.at_modeled_ms = parse_dbl(source, tok, kv.value, 0.0);
      have_trigger = true;
    } else if (kv.key == "alloc" && (ev.kind == ChaosEvent::Kind::kAllocFail ||
                                     ev.kind == ChaosEvent::Kind::kBitFlip)) {
      ev.at_alloc = parse_ll(source, tok, kv.value, 1);
      have_trigger = true;
    } else if (kv.key == "x" && ev.kind == ChaosEvent::Kind::kStraggler) {
      ev.factor = parse_dbl(source, tok, kv.value, 1.0);
    } else if (kv.key == "every" && (ev.kind == ChaosEvent::Kind::kStraggler ||
                                     ev.kind == ChaosEvent::Kind::kBitFlip)) {
      ev.every = parse_ll(source, tok, kv.value, 1);
    } else if (kv.key == "offset" && ev.kind == ChaosEvent::Kind::kBitFlip) {
      ev.offset =
          static_cast<std::size_t>(parse_ll(source, tok, kv.value, 0));
    } else if (kv.key == "mask" && ev.kind == ChaosEvent::Kind::kBitFlip) {
      const long long mask = parse_ll(source, tok, kv.value, 0);
      if (mask > 0xFF)
        bad_script(source, tok, "mask must fit in one byte");
      ev.mask = static_cast<std::uint8_t>(mask);
    } else {
      bad_script(source, tok,
                 "unknown parameter \"" + kv.key + "\" for verb \"" + head +
                     "\"");
    }
  }
  if (!have_trigger)
    bad_script(source, tok,
               ev.kind == ChaosEvent::Kind::kAllocFail ||
                       ev.kind == ChaosEvent::Kind::kBitFlip
                   ? "missing alloc=N trigger"
                   : "missing launch=N or ms=T trigger");
  return ev;
}

}  // namespace

ChaosSchedule ChaosSchedule::parse(const std::string& script,
                                   const std::string& source) {
  ChaosSchedule sched;
  std::size_t pos = 0;
  while (pos <= script.size()) {
    const std::size_t semi = script.find(';', pos);
    std::string tok = script.substr(
        pos, semi == std::string::npos ? std::string::npos : semi - pos);
    // Trim surrounding whitespace so "a; b" reads naturally.
    while (!tok.empty() && std::isspace(static_cast<unsigned char>(tok.front())))
      tok.erase(tok.begin());
    while (!tok.empty() && std::isspace(static_cast<unsigned char>(tok.back())))
      tok.pop_back();
    if (!tok.empty()) sched.events.push_back(parse_event(source, tok));
    if (semi == std::string::npos) break;
    pos = semi + 1;
  }
  return sched;
}

ChaosSchedule ChaosSchedule::seeded(std::uint64_t seed, int num_devices) {
  ChaosSchedule sched;
  if (num_devices <= 0) return sched;
  util::Rng rng(seed);

  // One device loss, landing after the trace has warmed up: random device,
  // launch ordinal in [32, 128).
  {
    ChaosEvent ev;
    ev.kind = ChaosEvent::Kind::kDeviceLoss;
    ev.device = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(num_devices)));
    ev.at_launch = 32 + static_cast<long long>(rng.uniform(96));
    sched.events.push_back(ev);
  }
  // Per device: a recurring straggler, one alloc failure, and a recurring
  // silent bit flip.  All ordinals drawn independently so schedules differ
  // across devices even at the same seed.
  static const double kFactors[] = {2.0, 4.0, 8.0};
  for (int d = 0; d < num_devices; ++d) {
    ChaosEvent straggle;
    straggle.kind = ChaosEvent::Kind::kStraggler;
    straggle.device = d;
    straggle.at_launch = 4 + static_cast<long long>(rng.uniform(28));
    straggle.factor = kFactors[rng.uniform(3)];
    straggle.every = 16 + static_cast<long long>(rng.uniform(48));
    sched.events.push_back(straggle);

    ChaosEvent oom;
    oom.kind = ChaosEvent::Kind::kAllocFail;
    oom.device = d;
    oom.at_alloc = 8 + static_cast<long long>(rng.uniform(120));
    sched.events.push_back(oom);

    ChaosEvent flip;
    flip.kind = ChaosEvent::Kind::kBitFlip;
    flip.device = d;
    flip.at_alloc = 16 + static_cast<long long>(rng.uniform(240));
    flip.offset = static_cast<std::size_t>(rng.uniform(64));
    flip.mask = static_cast<std::uint8_t>(1u << rng.uniform(8));
    flip.every = 64 + static_cast<long long>(rng.uniform(192));
    sched.events.push_back(flip);
  }
  return sched;
}

ChaosSchedule ChaosSchedule::from_env(int num_devices) {
  const std::string script = util::env_string("MPS_CHAOS_SCRIPT", "");
  if (!script.empty()) return parse(script, "MPS_CHAOS_SCRIPT");
  const long long seed = util::env_int_checked("MPS_CHAOS_SEED", 0);
  if (seed > 0)
    return seeded(static_cast<std::uint64_t>(seed), num_devices);
  return ChaosSchedule{};
}

std::string ChaosSchedule::to_script() const {
  std::ostringstream out;
  bool first = true;
  for (const ChaosEvent& ev : events) {
    if (!first) out << ';';
    first = false;
    const auto dev = [&]() -> std::string {
      return ev.device >= 0 ? ":dev=" + std::to_string(ev.device) : "";
    };
    switch (ev.kind) {
      case ChaosEvent::Kind::kDeviceLoss:
        out << "lose" << dev() << '@';
        if (ev.at_launch > 0)
          out << "launch=" << ev.at_launch;
        else
          out << "ms=" << ev.at_modeled_ms;
        break;
      case ChaosEvent::Kind::kStraggler:
        out << "straggle" << dev() << "@launch=" << ev.at_launch
            << ",x=" << ev.factor;
        if (ev.every > 0) out << ",every=" << ev.every;
        break;
      case ChaosEvent::Kind::kAllocFail:
        out << "oom" << dev() << "@alloc=" << ev.at_alloc;
        break;
      case ChaosEvent::Kind::kBitFlip: {
        char mask[8];
        std::snprintf(mask, sizeof(mask), "0x%02x", ev.mask);
        out << "flip" << dev() << "@alloc=" << ev.at_alloc
            << ",offset=" << ev.offset << ",mask=" << mask;
        if (ev.every > 0) out << ",every=" << ev.every;
        break;
      }
    }
  }
  return out.str();
}

}  // namespace mps::vgpu
