#include "vgpu/device_set.hpp"

#include <cstdlib>

namespace mps::vgpu {

DeviceProperties device_profile(const std::string& name,
                                const std::string& source) {
  if (name == "titan") return gtx_titan();
  if (name == "fast") return fast_profile();
  if (name == "slow") return slow_profile();
  throw InvalidInputError(source + ": unknown device profile '" + name +
                          "' (expected titan, fast, or slow)");
}

double throughput_weight(const DeviceProperties& p) {
  return p.global_bytes_per_ns();
}

std::vector<DeviceSpecEntry> parse_device_spec(const std::string& spec,
                                               int num_devices,
                                               const std::string& source) {
  if (num_devices < 1) {
    throw InvalidInputError(source + ": device count must be >= 1, got " +
                            std::to_string(num_devices));
  }
  std::vector<DeviceSpecEntry> out;
  if (spec.empty()) {
    out.assign(static_cast<std::size_t>(num_devices),
               DeviceSpecEntry{"titan", gtx_titan()});
    return out;
  }
  std::size_t entries = 0;  ///< comma-separated entries seen
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string entry =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    ++entries;
    std::string profile = entry;
    long long count = 1;
    if (const std::size_t star = entry.find('*'); star != std::string::npos) {
      profile = entry.substr(0, star);
      const std::string count_str = entry.substr(star + 1);
      char* end = nullptr;
      errno = 0;
      count = std::strtoll(count_str.c_str(), &end, 10);
      if (count_str.empty() || end == nullptr || *end != '\0' || errno != 0 ||
          count < 1 || count > 4096) {
        throw InvalidInputError(source + ": malformed device count '" +
                                count_str + "' in entry '" + entry + "'");
      }
    }
    if (profile.empty()) {
      throw InvalidInputError(source + ": empty profile in entry '" + entry +
                              "'");
    }
    const DeviceProperties props = device_profile(profile, source);
    for (long long i = 0; i < count; ++i) {
      out.push_back(DeviceSpecEntry{profile, props});
    }
  }
  // A single bare profile ("fast") broadcasts to the fleet size; any
  // explicit count must add up exactly — a spec that silently over- or
  // under-provisions is a deploy bug.
  if (entries == 1 && spec.find('*') == std::string::npos &&
      out.size() == 1 && num_devices > 1) {
    out.assign(static_cast<std::size_t>(num_devices), out.front());
  }
  if (out.size() != static_cast<std::size_t>(num_devices)) {
    throw InvalidInputError(
        source + ": spec '" + spec + "' expands to " +
        std::to_string(out.size()) + " devices, but " +
        std::to_string(num_devices) + " were requested");
  }
  return out;
}

DeviceSet::DeviceSet(std::vector<DeviceSpecEntry> spec) {
  slots_.reserve(spec.size());
  for (auto& e : spec) {
    Slot s;
    s.profile = std::move(e.profile);
    s.props = e.props;
    s.weight = throughput_weight(e.props);
    s.device = std::make_unique<Device>(e.props);
    slots_.push_back(std::move(s));
  }
}

double DeviceSet::total_weight() const {
  double total = 0.0;
  for (const Slot& s : slots_) total += s.weight;
  return total;
}

std::unique_ptr<Device> DeviceSet::replace(std::size_t i) {
  auto fresh = std::make_unique<Device>(slots_[i].props);
  std::unique_ptr<Device> old = std::move(slots_[i].device);
  slots_[i].device = std::move(fresh);
  return old;
}

}  // namespace mps::vgpu
