#pragma once
// Scripted chaos schedules for the virtual GPU (docs/robustness.md).
//
// The FaultInjector's original fault classes (allocation failures, bit
// flips) model single-event faults.  Chaos schedules compose whole fault
// *timelines* out of four event kinds, armed per device:
//
//   device loss — once triggered (by launch ordinal or cumulative modeled
//     time), the device is lost PERMANENTLY: every later kernel launch
//     and every later allocation throws DeviceLostError.  Models a GPU
//     falling off the bus; the serving engine answers with worker
//     quarantine + re-provisioning (serve::Engine).
//   straggler — a scheduled launch completes, but its modeled latency is
//     multiplied by a factor (optionally repeating every K launches).
//     Models thermal throttling / a contended link.  Purely a timing
//     fault: results are untouched.
//   alloc failure / bit flip — the injector's existing fault classes,
//     schedulable per device so one script can mix all four kinds.
//
// Everything is deterministic: a schedule is a plain list of events,
// triggers count from the moment the injector is armed, and the seeded
// generator is a pure function of (seed, device count).  Replaying the
// same ops against the same schedule reproduces the same fault timeline
// bit for bit — the property the chaos harness (mps_serve --chaos-*)
// builds its invariants on.
//
// Environment knobs (parsed strictly — malformed values throw a typed
// InvalidInputError naming the variable):
//   MPS_CHAOS_SCRIPT — explicit schedule in the mini-language below
//   MPS_CHAOS_SEED   — pseudo-random schedule from a seed (0 = disabled;
//                      ignored when MPS_CHAOS_SCRIPT is set)

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace mps::vgpu {

/// Thrown when a kernel launch or device allocation hits a device that
/// chaos injection marked lost.  Permanent for that device — every later
/// launch and reserve throws it too.  Infrastructure-level, unlike
/// DeviceOomError: callers should fail over to another device, not retry
/// in place.
class DeviceLostError : public mps::Error {
 public:
  explicit DeviceLostError(const std::string& what) : mps::Error(what) {}
};

/// One scripted fault.  Launch/alloc ordinals are 1-based and count from
/// the moment the schedule is armed on the injector; modeled-time
/// triggers compare against the device's cumulative modeled milliseconds.
struct ChaosEvent {
  enum class Kind { kDeviceLoss, kStraggler, kAllocFail, kBitFlip };
  Kind kind = Kind::kDeviceLoss;
  int device = -1;              ///< target device ordinal; -1 = every device
  long long at_launch = 0;      ///< launch-ordinal trigger (0 = unused)
  double at_modeled_ms = -1.0;  ///< modeled-time trigger (< 0 = unused)
  long long at_alloc = 0;       ///< allocation ordinal (kAllocFail/kBitFlip)
  double factor = 4.0;          ///< kStraggler: modeled-latency multiplier
  long long every = 0;          ///< kStraggler/kBitFlip repeat period; 0 = once
  std::size_t offset = 0;       ///< kBitFlip: byte offset into the window
  std::uint8_t mask = 0x01;     ///< kBitFlip: XOR mask
};

/// An ordered set of ChaosEvents; armed onto per-device FaultInjectors
/// with FaultInjector::arm_chaos(schedule, device_ordinal).
struct ChaosSchedule {
  std::vector<ChaosEvent> events;

  bool empty() const { return events.empty(); }

  /// Parse the script mini-language: events separated by ';', each
  ///
  ///   lose[:dev=D]@launch=N                       device loss at launch N
  ///   lose[:dev=D]@ms=T                           loss once modeled time >= T
  ///   straggle[:dev=D]@launch=N[,x=F][,every=K]   latency spike (xF)
  ///   oom[:dev=D]@alloc=N                         injected alloc failure
  ///   flip[:dev=D]@alloc=N[,offset=B][,mask=M][,every=K]   silent bit flip
  ///
  /// e.g. "lose:dev=0@launch=40;straggle@launch=8,x=8,every=32".
  /// Malformed input throws InvalidInputError naming `source` (the env
  /// variable, when the script came from one).
  static ChaosSchedule parse(const std::string& script,
                             const std::string& source = "chaos script");

  /// Deterministic pseudo-random schedule mixing all four event kinds
  /// over `num_devices` devices: one device loss on a random device,
  /// plus a recurring straggler, one alloc failure, and one recurring
  /// bit flip per device.  A pure function of (seed, num_devices).
  static ChaosSchedule seeded(std::uint64_t seed, int num_devices);

  /// MPS_CHAOS_SCRIPT (takes precedence) or MPS_CHAOS_SEED; an empty
  /// schedule when neither is set.  Strict parsing throughout.
  static ChaosSchedule from_env(int num_devices);

  /// Render back into the script mini-language (diagnostics, logs).
  std::string to_script() const;
};

}  // namespace mps::vgpu
