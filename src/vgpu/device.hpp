#pragma once
// The virtual GPU device: properties + memory accounting + kernel launch.
//
// Fault injection: the constructor honors the MPS_FAULT_* environment
// knobs (fault_injector.hpp) — MPS_FAULT_CAPACITY caps device capacity,
// MPS_FAULT_ALLOC_N / MPS_FAULT_BYTE_LIMIT arm the attached injector —
// so a whole test run can be swept for exception safety without code
// changes.  Explicitly constructed DeviceProperties with a smaller
// capacity keep their capacity (the cap is a min, not an override).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/profile.hpp"
#include "telemetry/span.hpp"
#include "util/timer.hpp"
#include "vgpu/counters.hpp"
#include "vgpu/cta.hpp"
#include "vgpu/device_properties.hpp"
#include "vgpu/fault_injector.hpp"
#include "vgpu/memory_model.hpp"
#include "vgpu/thread_pool.hpp"
#include "vgpu/timing.hpp"

namespace mps::vgpu {

class Device {
 public:
  explicit Device(DeviceProperties props = gtx_titan());

  const DeviceProperties& props() const { return props_; }
  MemoryModel& memory() { return memory_; }

  /// The device's fault injector (always present; disarmed by default
  /// unless MPS_FAULT_* armed it at construction).
  FaultInjector& fault_injector() { return *fault_; }

  /// Execute `kernel(Cta&)` for every CTA of a grid.  CTAs run in parallel
  /// on the host pool; modeled time comes from the per-CTA cost counters.
  ///
  /// `kernel` must write disjoint outputs per CTA (as real CUDA kernels in
  /// this codebase do); results and stats are then deterministic.
  template <typename F>
  KernelStats launch(const std::string& name, int num_ctas, int block_threads,
                     F&& kernel) {
    MPS_CHECK(num_ctas >= 0);
    MPS_CHECK(block_threads > 0 && block_threads <= props_.max_cta_threads);
    // Chaos hook: one predictable branch when no schedule is armed (the
    // zero-overhead-when-off contract asserted by bench/serve_throughput).
    // A lost device refuses every launch; a straggler multiplies this
    // launch's modeled latency after the cost model runs.
    double chaos_factor = 1.0;
    if (fault_->chaos_armed()) {
      const FaultInjector::LaunchFault f = fault_->on_launch(modeled_total_ms_);
      if (f.lost) {
        throw DeviceLostError("device lost (chaos): refusing launch of \"" +
                              name + "\"");
      }
      chaos_factor = f.factor;
    }
    // Telemetry stamp: the active span context and wall start, read before
    // the CTAs run.  One relaxed atomic load when the tracer is disabled;
    // never charges the cost model either way.
    const bool traced = telemetry::tracer().enabled();
    const telemetry::SpanContext span_ctx =
        traced ? telemetry::current_context() : telemetry::SpanContext{};
    const double start_us = traced ? telemetry::tracer().now_us() : -1.0;
    util::WallTimer wall;
    std::vector<CtaCounters> counters(static_cast<std::size_t>(num_ctas));
    auto body = [&](std::size_t i) {
      thread_local SharedMemory shm(props_.shared_mem_per_cta);
      if (shm.capacity() != props_.shared_mem_per_cta) {
        shm = SharedMemory(props_.shared_mem_per_cta);
      }
      shm.reset();
      Cta cta(static_cast<int>(i), num_ctas, block_threads, props_, shm,
              counters[i]);
      kernel(cta);
    };
    global_pool().parallel_for(static_cast<std::size_t>(num_ctas), body);

    KernelStats stats;
    stats.name = name;
    stats.num_ctas = num_ctas;
    std::vector<double> cycles(counters.size());
    for (std::size_t i = 0; i < counters.size(); ++i) {
      cycles[i] = counters[i].cycles(props_);
      stats.totals += counters[i];
    }
    stats.device_cycles = schedule_cycles(props_, cycles);
    stats.modeled_ms = props_.cycles_to_ms(stats.device_cycles);
    if (chaos_factor != 1.0) {
      stats.device_cycles *= chaos_factor;
      stats.modeled_ms *= chaos_factor;
    }
    modeled_total_ms_ += stats.modeled_ms;
    stats.wall_ms = wall.milliseconds();
    stats.trace_id = span_ctx.trace_id;
    stats.span_id = span_ctx.span_id;
    stats.start_us = start_us;
    // Roofline attribution: bytes moved, flops, and this device's peak
    // bandwidth, attributed along the thread's ProfAttr axes.  One
    // relaxed atomic load when the profiler is disabled; reads stats
    // after the cost model is final, so modeled time is bit-identical
    // either way (asserted by bench/plan_reuse_spmv).
    if (telemetry::profiler().enabled()) {
      telemetry::profiler().record_kernel(
          name,
          static_cast<double>(stats.totals.global_bytes +
                              stats.totals.gather_bytes),
          static_cast<double>(stats.totals.flops), stats.modeled_ms,
          props_.global_bytes_per_ns());
    }
    log_.push_back(stats);
    return stats;
  }

  /// Chronological log of every kernel launched on this device.
  const std::vector<KernelStats>& log() const { return log_; }
  void clear_log() { log_.clear(); }

  /// Cumulative modeled milliseconds across every launch (straggler
  /// inflation included) — the clock chaos time-triggers compare against.
  double modeled_total_ms() const { return modeled_total_ms_; }

 private:
  DeviceProperties props_;
  MemoryModel memory_;
  std::unique_ptr<FaultInjector> fault_;  ///< stable address for memory_
  std::vector<KernelStats> log_;
  double modeled_total_ms_ = 0.0;
};

}  // namespace mps::vgpu
