#pragma once
// Chrome-trace (chrome://tracing / Perfetto) export of device kernel
// logs and telemetry spans (docs/observability.md).
//
// Two exporters:
//
//   * write_chrome_trace — one device's kernel log on a single "Virtual
//     GPU" track, laid back-to-back on the modeled timeline, so the
//     phase structure of an operation (e.g. the Fig 11 SpGEMM pipeline)
//     can be inspected visually.  Process/thread name metadata events
//     are emitted so the track is labeled in the UI.
//
//   * write_perfetto_trace — the multi-track timeline: every span track
//     collected by the telemetry tracer (serving-request lanes, host
//     phase spans) becomes a named process, and each device's kernel
//     log becomes one more.  Kernel events launched while the tracer
//     was enabled carry their wall start time, so they land *inside*
//     the host phase span that issued them; their duration stays the
//     modeled one, and every event carries its trace/span ids in args —
//     the correlation key tying a serving request to the kernels it ran.
//     Kernels with no wall stamp (tracer off at launch) fall back to
//     the back-to-back modeled layout.
//
// All string fields are JSON-escaped (including control and non-ASCII
// bytes), so arbitrary kernel names survive a JSON round trip.

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "telemetry/span.hpp"
#include "vgpu/device.hpp"

namespace mps::vgpu {

/// Write the device's kernel log as Chrome trace JSON.
void write_chrome_trace(std::ostream& out, const Device& device);

/// Convenience file variant; throws mps::IoError on I/O failure.
void write_chrome_trace_file(const std::string& path, const Device& device);

/// One device lane of a multi-track export.
struct TraceTrack {
  std::string name;  ///< process name in the trace UI ("vgpu worker 0", ...)
  const Device* device = nullptr;
};

/// Multi-track Perfetto export: tracer spans plus every device's kernel
/// log, correlated by trace/span ids (see file comment).  The devices
/// must be quiescent (no concurrent launches) while exporting.
void write_perfetto_trace(std::ostream& out, std::span<const TraceTrack> tracks,
                          const telemetry::Tracer& tracer = telemetry::tracer());

/// Convenience file variant; throws mps::IoError on I/O failure.
void write_perfetto_trace_file(const std::string& path,
                               std::span<const TraceTrack> tracks,
                               const telemetry::Tracer& tracer = telemetry::tracer());

}  // namespace mps::vgpu
