#pragma once
// Chrome-trace (chrome://tracing / Perfetto) export of a device's kernel
// log.  Each kernel becomes a complete event on the "Virtual GPU" track,
// laid out back-to-back on the modeled timeline, so the phase structure
// of an operation (e.g. the Fig 11 SpGEMM pipeline) can be inspected
// visually.

#include <iosfwd>
#include <string>

#include "vgpu/device.hpp"

namespace mps::vgpu {

/// Write the device's kernel log as Chrome trace JSON.
void write_chrome_trace(std::ostream& out, const Device& device);

/// Convenience file variant; throws mps::IoError on I/O failure.
void write_chrome_trace_file(const std::string& path, const Device& device);

}  // namespace mps::vgpu
