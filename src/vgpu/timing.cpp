#include "vgpu/timing.hpp"

#include <algorithm>
#include <vector>

namespace mps::vgpu {

double schedule_cycles(const DeviceProperties& props,
                       std::span<const double> cta_cycles) {
  if (cta_cycles.empty()) return props.kernel_launch_cycles;
  const int slots = std::max(1, props.num_sms * props.ctas_per_sm);
  // Greedy earliest-free-slot schedule.  A plain round-robin misattributes
  // time when one early CTA is huge; hardware backfills idle SMs, and the
  // earliest-free heuristic models that.
  std::vector<double> free_at(static_cast<std::size_t>(slots), 0.0);
  for (double c : cta_cycles) {
    auto it = std::min_element(free_at.begin(), free_at.end());
    *it += c;
  }
  const double makespan = *std::max_element(free_at.begin(), free_at.end());
  return makespan + props.kernel_launch_cycles;
}

}  // namespace mps::vgpu
