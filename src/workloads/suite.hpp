#pragma once
// The paper's Table II test suite as synthetic surrogates.
//
// `paper_suite(scale)` builds all fourteen matrices at `scale` times
// their native row count (degree distributions unchanged, so nnz scales
// linearly).  Native statistics from the paper are carried along for
// auditing (bench/table2_matrices prints both) and for the native
// memory-footprint checks in the SpGEMM evaluation.

#include <string>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/stats.hpp"

namespace mps::workloads {

struct SuiteEntry {
  std::string name;
  sparse::CsrD matrix;
  // Native statistics from Table II of the paper.
  index_t paper_rows = 0;
  index_t paper_cols = 0;
  long long paper_nnz = 0;
  double paper_avg = 0.0;
  double paper_std = 0.0;
  /// Fig 9 multiplies LP as A x A^T (nonsquare); everything else as A x A.
  bool spgemm_transpose = false;
  /// Estimated native SpGEMM intermediate size (products) — used for the
  /// device-capacity check that reproduces the paper's Dense OOM.
  double native_products_estimate = 0.0;
};

/// All 14 Table II matrices at the given scale (1.0 = native size).
/// Entries appear in the paper's order.
std::vector<SuiteEntry> paper_suite(double scale);

/// A single entry by name (builds only that matrix).
SuiteEntry suite_entry(const std::string& name, double scale);

/// The names in Table II order.
std::vector<std::string> suite_names();

/// A Table II entry paired with the apply count of the iterative driver
/// it stands in for — the repeated-apply regime where a reused SpmvPlan
/// amortizes the merge-path partition (see docs/spmv_plan.md).
struct IterativeEntry {
  SuiteEntry entry;
  int applies = 0;          ///< representative SpMV applications per solve
  const char* driver = "";  ///< the examples/ workload it models
};

/// The iterative-workload subset of Table II: one matrix per iterative
/// driver in examples/ (CG, PageRank, AMG smoothing, Markov ensemble).
std::vector<IterativeEntry> iterative_suite(double scale);

}  // namespace mps::workloads
