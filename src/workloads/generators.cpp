#include "workloads/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sparse/convert.hpp"
#include "sparse/coo.hpp"

namespace mps::workloads {

using sparse::CooD;
using sparse::CsrD;

namespace {

/// Assemble a CSR matrix from per-row degree targets and a column sampler.
/// `col_of(rng, r, i)` proposes column i of row r; duplicates within a row
/// are re-drawn a bounded number of times and then dropped, so realized
/// degrees can fall slightly short in pathological cases.
template <typename ColFn>
CsrD assemble(index_t rows, index_t cols, const std::vector<index_t>& degrees,
              util::Rng& rng, ColFn&& col_of) {
  CooD coo(rows, cols);
  std::size_t total = 0;
  for (index_t d : degrees) total += static_cast<std::size_t>(d);
  coo.reserve(total);
  std::vector<index_t> row_cols;
  for (index_t r = 0; r < rows; ++r) {
    const index_t deg = std::min<index_t>(degrees[static_cast<std::size_t>(r)], cols);
    row_cols.clear();
    row_cols.reserve(static_cast<std::size_t>(deg));
    for (index_t i = 0; i < deg; ++i) {
      row_cols.push_back(col_of(rng, r, i));
    }
    std::sort(row_cols.begin(), row_cols.end());
    row_cols.erase(std::unique(row_cols.begin(), row_cols.end()), row_cols.end());
    // Top up once to compensate collision losses (keeps moments tight).
    index_t attempts = 4 * (deg - static_cast<index_t>(row_cols.size()));
    while (static_cast<index_t>(row_cols.size()) < deg && attempts-- > 0) {
      const index_t c = col_of(rng, r, static_cast<index_t>(row_cols.size()));
      auto it = std::lower_bound(row_cols.begin(), row_cols.end(), c);
      if (it == row_cols.end() || *it != c) row_cols.insert(it, c);
    }
    for (const index_t c : row_cols) {
      coo.push_back(r, c, rng.uniform_double(-1.0, 1.0));
    }
  }
  return sparse::coo_to_csr(coo);
}

index_t clip_degree(double d, index_t cols) {
  if (d < 1.0) return 1;
  if (d > static_cast<double>(cols)) return cols;
  return static_cast<index_t>(std::llround(d));
}

}  // namespace

CsrD dense_block(index_t rows, index_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  CsrD a(rows, cols);
  a.col.resize(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  a.val.resize(a.col.size());
  for (index_t r = 0; r < rows; ++r) {
    a.row_offsets[static_cast<std::size_t>(r) + 1] =
        a.row_offsets[static_cast<std::size_t>(r)] + cols;
    for (index_t c = 0; c < cols; ++c) {
      const std::size_t k = static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
                            static_cast<std::size_t>(c);
      a.col[k] = c;
      a.val[k] = rng.uniform_double(-1.0, 1.0);
    }
  }
  return a;
}

CsrD fem_banded(index_t rows, double avg_deg, double std_deg, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<index_t> degrees(static_cast<std::size_t>(rows));
  for (auto& d : degrees) d = clip_degree(rng.normal(avg_deg, std_deg), rows);
  // Columns cluster around the diagonal within a band ~ 2x the mean
  // degree — the tight coupling profile FEM discretizations produce
  // (neighbouring elements share most of their degrees of freedom, which
  // is what makes the SpGEMM block-level reduction effective).
  const double band = std::max(8.0, 2.0 * avg_deg);
  return assemble(rows, rows, degrees, rng, [&](util::Rng& r2, index_t r, index_t) {
    const double off = r2.normal(0.0, band / 2.0);
    long long c = static_cast<long long>(r) + static_cast<long long>(std::llround(off));
    if (c < 0) c = -c;
    if (c >= rows) c = 2LL * (rows - 1) - c;
    return static_cast<index_t>(std::clamp<long long>(c, 0, rows - 1));
  });
}

CsrD fixed_stencil(index_t rows, index_t per_row, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<index_t> degrees(static_cast<std::size_t>(rows),
                               std::min(per_row, rows));
  // Deterministic regular structure: evenly spaced neighbours (wraps),
  // like the structured-grid QCD and Epidemiology operators.
  const index_t stride = std::max<index_t>(1, rows / std::max<index_t>(per_row, 1));
  return assemble(rows, rows, degrees, rng, [&](util::Rng&, index_t r, index_t i) {
    return static_cast<index_t>(
        (static_cast<long long>(r) + static_cast<long long>(i) * stride) % rows);
  });
}

CsrD random_sparse(index_t rows, index_t cols, double avg_deg, double std_deg,
                   std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<index_t> degrees(static_cast<std::size_t>(rows));
  for (auto& d : degrees) d = clip_degree(rng.normal(avg_deg, std_deg), cols);
  return assemble(rows, cols, degrees, rng, [&](util::Rng& r2, index_t, index_t) {
    return static_cast<index_t>(r2.uniform(static_cast<std::uint64_t>(cols)));
  });
}

CsrD powerlaw_web(index_t rows, double tail_fraction, double tail_zipf_s,
                  index_t base_deg, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<index_t> degrees(static_cast<std::size_t>(rows));
  for (auto& d : degrees) {
    if (rng.uniform_double() < tail_fraction) {
      // Tail range is capped so the degree moments are scale-stable.
      const std::uint64_t tail_range =
          std::min<std::uint64_t>(static_cast<std::uint64_t>(rows) / 2 + 1, 5000);
      d = clip_degree(static_cast<double>(rng.zipf(tail_range, tail_zipf_s)), rows);
    } else {
      d = clip_degree(1.0 + static_cast<double>(rng.uniform(
                                static_cast<std::uint64_t>(2 * base_deg))),
                      rows);
    }
  }
  // Hub columns: popularity follows a zipf law, scattered by a fixed
  // multiplicative hash so hubs are spread over the index range.
  return assemble(rows, rows, degrees, rng, [&](util::Rng& r2, index_t, index_t) {
    const std::uint64_t popular = r2.zipf(static_cast<std::uint64_t>(rows), 1.1) - 1;
    return static_cast<index_t>((popular * 0x9E3779B97F4A7C15ull) %
                                static_cast<std::uint64_t>(rows));
  });
}

CsrD lp_rect(index_t rows, index_t cols, double avg_deg, double std_deg,
             std::uint64_t seed) {
  util::Rng rng(seed);
  // Lognormal degrees matching the target mean/std.
  const double cv = std_deg / avg_deg;
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(avg_deg) - 0.5 * sigma2;
  const double sigma = std::sqrt(sigma2);
  std::vector<index_t> degrees(static_cast<std::size_t>(rows));
  for (auto& d : degrees) d = clip_degree(std::exp(rng.normal(mu, sigma)), cols);
  return assemble(rows, cols, degrees, rng, [&](util::Rng& r2, index_t, index_t) {
    return static_cast<index_t>(r2.uniform(static_cast<std::uint64_t>(cols)));
  });
}

CsrD rmat(int scale, index_t edge_factor, double a, double b, double c,
          std::uint64_t seed) {
  MPS_CHECK(scale >= 1 && scale < 31);
  MPS_CHECK(a > 0 && b >= 0 && c >= 0 && a + b + c < 1.0);
  util::Rng rng(seed);
  const index_t n = index_t{1} << scale;
  const std::size_t edges =
      static_cast<std::size_t>(edge_factor) * static_cast<std::size_t>(n);
  CooD coo(n, n);
  coo.reserve(edges);
  for (std::size_t e = 0; e < edges; ++e) {
    index_t row = 0, col = 0;
    for (int level = 0; level < scale; ++level) {
      const double u = rng.uniform_double();
      row <<= 1;
      col <<= 1;
      if (u < a) {
        // top-left
      } else if (u < a + b) {
        col |= 1;
      } else if (u < a + b + c) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    coo.push_back(row, col, rng.uniform_double(-1.0, 1.0));
  }
  coo.canonicalize();
  return sparse::coo_to_csr(coo);
}

CsrD poisson2d(index_t nx, index_t ny) {
  const index_t n = nx * ny;
  CooD coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * 5);
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t r = j * nx + i;
      coo.push_back(r, r, 4.0);
      if (i > 0) coo.push_back(r, r - 1, -1.0);
      if (i + 1 < nx) coo.push_back(r, r + 1, -1.0);
      if (j > 0) coo.push_back(r, r - nx, -1.0);
      if (j + 1 < ny) coo.push_back(r, r + nx, -1.0);
    }
  }
  return sparse::coo_to_csr(coo);
}

CsrD poisson3d27(index_t n) {
  const index_t total = n * n * n;
  CooD coo(total, total);
  coo.reserve(static_cast<std::size_t>(total) * 27);
  for (index_t z = 0; z < n; ++z) {
    for (index_t y = 0; y < n; ++y) {
      for (index_t x = 0; x < n; ++x) {
        const index_t r = (z * n + y) * n + x;
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const index_t xx = x + dx, yy = y + dy, zz = z + dz;
              if (xx < 0 || xx >= n || yy < 0 || yy >= n || zz < 0 || zz >= n)
                continue;
              const index_t c = (zz * n + yy) * n + xx;
              coo.push_back(r, c, r == c ? 26.0 : -1.0);
            }
          }
        }
      }
    }
  }
  return sparse::coo_to_csr(coo);
}

}  // namespace mps::workloads
