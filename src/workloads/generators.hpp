#pragma once
// Synthetic sparse matrix generators.
//
// The UFL matrices of the paper's Table II are not shipped here; these
// generators produce structural surrogates that match each matrix's
// shape, nonzero count, and row-degree moments (mean/std), plus the
// qualitative layout that drives kernel behaviour: FEM band structure,
// fixed stencils, uniform random sparsity, power-law web graphs, and the
// wide LP tableau with heavy-tailed rows.  All are deterministic in the
// seed.  See DESIGN.md §2 for why this preserves the evaluation.

#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace mps::workloads {

/// Fully dense block stored as a sparse matrix (Table II "Dense").
sparse::CsrD dense_block(index_t rows, index_t cols, std::uint64_t seed = 1);

/// FEM-style banded matrix: row degrees ~ clipped normal(avg, std),
/// columns clustered in a band around the diagonal (Protein, Spheres,
/// Cantilever, Wind, Harbor, Ship, Accelerator).
sparse::CsrD fem_banded(index_t rows, double avg_deg, double std_deg,
                        std::uint64_t seed);

/// Exactly `per_row` off-band-structured entries per row, zero variance
/// (QCD's 39/row, Epidemiology's ~4/row).
sparse::CsrD fixed_stencil(index_t rows, index_t per_row, std::uint64_t seed);

/// Unstructured random sparsity: degrees ~ clipped normal, columns
/// uniform (Economics, Circuit).
sparse::CsrD random_sparse(index_t rows, index_t cols, double avg_deg,
                           double std_deg, std::uint64_t seed);

/// Power-law web graph: most rows tiny, a heavy tail of hub rows, and
/// hub columns under a zipf popularity law (Webbase: avg 3.1, std 25).
sparse::CsrD powerlaw_web(index_t rows, double tail_fraction, double tail_zipf_s,
                          index_t base_deg, std::uint64_t seed);

/// Wide LP tableau: few rows, ~1M columns, lognormal row degrees with
/// std larger than the mean (LP: avg 2633, std 4209).
sparse::CsrD lp_rect(index_t rows, index_t cols, double avg_deg, double std_deg,
                     std::uint64_t seed);

/// R-MAT / Kronecker random graph (Chakrabarti et al.): 2^scale vertices,
/// ~edge_factor * 2^scale directed edges placed by recursive quadrant
/// selection with probabilities (a, b, c, 1-a-b-c).  Graph500 defaults
/// (0.57, 0.19, 0.19) produce the skewed degree distributions that stress
/// row-wise schemes.  Deduplicated; values uniform in [-1, 1).
sparse::CsrD rmat(int scale, index_t edge_factor, double a, double b, double c,
                  std::uint64_t seed);

/// 5-point 2D Poisson stencil on an nx x ny grid (examples/benches).
sparse::CsrD poisson2d(index_t nx, index_t ny);

/// 27-point 3D stencil on an n^3 grid.
sparse::CsrD poisson3d27(index_t n);

}  // namespace mps::workloads
