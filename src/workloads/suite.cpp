#include "workloads/suite.hpp"

#include <cmath>
#include <stdexcept>

#include "util/error.hpp"

#include "workloads/generators.hpp"

namespace mps::workloads {

namespace {

struct EntrySpec {
  const char* name;
  index_t rows;
  index_t cols;
  long long nnz;
  double avg;
  double std;
  bool transpose;  ///< Fig 9's LP special case
};

// Table II of the paper, verbatim.
constexpr EntrySpec kSpecs[] = {
    {"Dense", 2000, 2000, 4'000'000, 2000.00, 0.00, false},
    {"Protein", 36'417, 36'417, 4'344'765, 119.31, 31.86, false},
    {"Spheres", 83'334, 83'334, 6'010'480, 72.13, 19.08, false},
    {"Cantilever", 62'451, 62'451, 4'007'383, 64.17, 14.06, false},
    {"Wind Tunnel", 217'918, 217'918, 11'634'424, 53.39, 4.74, false},
    {"Harbor", 46'835, 46'835, 2'374'001, 50.69, 27.78, false},
    {"QCD", 49'152, 49'152, 1'916'928, 39.00, 0.00, false},
    {"Ship", 140'874, 140'874, 7'813'404, 55.46, 11.07, false},
    {"Economics", 206'500, 206'500, 1'273'389, 6.17, 4.44, false},
    {"Epidemiology", 525'825, 525'825, 2'100'225, 3.99, 0.08, false},
    {"Accelerator", 121'192, 121'192, 2'624'331, 21.65, 13.79, false},
    {"Circuit", 170'998, 170'998, 958'936, 5.61, 4.39, false},
    {"Webbase", 1'000'005, 1'000'005, 3'105'536, 3.11, 25.35, false},
    {"LP", 4'284, 1'092'610, 11'279'748, 2632.99, 4209.26, true},
};

index_t scaled(index_t native, double scale, index_t floor_at = 8) {
  const auto v = static_cast<index_t>(std::llround(static_cast<double>(native) * scale));
  return std::max(floor_at, v);
}

sparse::CsrD build(const EntrySpec& s, double scale) {
  const std::string name = s.name;
  const std::uint64_t seed = 0xC0FFEEull + std::hash<std::string>{}(name);
  const index_t rows = scaled(s.rows, scale);
  if (name == "Dense") {
    return dense_block(rows, rows, seed);
  }
  if (name == "QCD") {
    return fixed_stencil(rows, 39, seed);
  }
  if (name == "Epidemiology") {
    return fixed_stencil(rows, 4, seed);
  }
  if (name == "Economics" || name == "Circuit") {
    return random_sparse(rows, rows, s.avg, s.std, seed);
  }
  if (name == "Webbase") {
    return powerlaw_web(rows, /*tail_fraction=*/0.015, /*tail_zipf_s=*/1.5,
                        /*base_deg=*/2, seed);
  }
  if (name == "LP") {
    return lp_rect(rows, scaled(s.cols, scale), s.avg, s.std, seed);
  }
  // FEM family: Protein, Spheres, Cantilever, Wind Tunnel, Harbor, Ship,
  // Accelerator.
  return fem_banded(rows, s.avg, s.std, seed);
}

/// Native SpGEMM intermediate sizes (products), estimated from Table II:
/// Dense is rows * cols^2; LP multiplies A x A^T so the work is driven by
/// the *column* counts (nnz^2 / cols for uniform columns); everything else
/// is approximately nnz * avg_row.
double native_products(const EntrySpec& s) {
  const std::string name = s.name;
  if (name == "Dense") {
    return static_cast<double>(s.rows) * static_cast<double>(s.cols) *
           static_cast<double>(s.cols);
  }
  if (s.transpose) {
    const double col_avg = static_cast<double>(s.nnz) / static_cast<double>(s.cols);
    return static_cast<double>(s.nnz) * (col_avg + 1.0);
  }
  return static_cast<double>(s.nnz) * s.avg;
}

SuiteEntry make_entry(const EntrySpec& s, double scale) {
  SuiteEntry e;
  e.name = s.name;
  e.matrix = build(s, scale);
  e.paper_rows = s.rows;
  e.paper_cols = s.cols;
  e.paper_nnz = s.nnz;
  e.paper_avg = s.avg;
  e.paper_std = s.std;
  e.spgemm_transpose = s.transpose;
  e.native_products_estimate = native_products(s);
  return e;
}

}  // namespace

std::vector<SuiteEntry> paper_suite(double scale) {
  MPS_CHECK(scale > 0.0);
  std::vector<SuiteEntry> out;
  out.reserve(std::size(kSpecs));
  for (const auto& s : kSpecs) out.push_back(make_entry(s, scale));
  return out;
}

SuiteEntry suite_entry(const std::string& name, double scale) {
  for (const auto& s : kSpecs) {
    if (name == s.name) return make_entry(s, scale);
  }
  throw InvalidInputError("unknown suite entry: " + name);
}

std::vector<std::string> suite_names() {
  std::vector<std::string> names;
  for (const auto& s : kSpecs) names.emplace_back(s.name);
  return names;
}

std::vector<IterativeEntry> iterative_suite(double scale) {
  // Apply counts mirror the examples/ drivers at default sizes: CG on a
  // FEM mesh converges in a few hundred iterations, PageRank power
  // iteration runs ~100 sweeps, an AMG solve issues a few hundred
  // smoother applications across its cycles, and the Markov ensemble
  // advances 30 steps for each of 8 chains.
  struct IterSpec {
    const char* name;
    int applies;
    const char* driver;
  };
  constexpr IterSpec kIterSpecs[] = {
      {"Wind Tunnel", 500, "cg_poisson"},
      {"Webbase", 100, "pagerank"},
      {"Epidemiology", 300, "amg_vcycle"},
      {"Circuit", 240, "markov_ensemble"},
  };
  std::vector<IterativeEntry> out;
  out.reserve(std::size(kIterSpecs));
  for (const auto& s : kIterSpecs) {
    out.push_back({suite_entry(s.name, scale), s.applies, s.driver});
  }
  return out;
}

}  // namespace mps::workloads
