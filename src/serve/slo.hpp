#pragma once
// mps::serve — per-tenant SLO engine (docs/observability.md).
//
// Each registered matrix handle is a tenant.  The tracker holds one
// latency objective for all tenants ("objective of requests complete
// within latency_ms") and accounts burn rate over two windows — a short
// one that reacts fast and a long one that filters blips — the
// multi-window, multi-burn-rate alerting shape from the SRE workbook.
// A tenant alerts when BOTH windows burn error budget faster than
// `burn_alert` times the sustainable rate.
//
// burn rate = (bad fraction in window) / (1 - objective); 1.0 means the
// tenant is consuming exactly its error budget, 2.0 means the budget
// will be gone in half the window.
//
// Strict-parsed knobs (garbage raises InvalidInputError naming the
// variable):
//   MPS_SLO              — 1 enables the tracker in the engine (default 0)
//   MPS_SLO_LATENCY_MS   — good/bad latency threshold (default 50)
//   MPS_SLO_OBJECTIVE    — good fraction objective in (0, 1) (default 0.999)
//   MPS_SLO_SHORT_WINDOW — short window, requests (default 256)
//   MPS_SLO_LONG_WINDOW  — long window, requests (default 4096; >= short)
//   MPS_SLO_BURN_ALERT   — alert when both windows exceed this burn rate
//                          (default 2.0)

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace mps::serve {

struct SloConfig {
  double latency_ms = 50.0;
  double objective = 0.999;
  int short_window = 256;
  int long_window = 4096;
  double burn_alert = 2.0;

  /// Strict-parse the MPS_SLO_* knobs (not MPS_SLO itself — whether the
  /// tracker runs is the engine's slo_enabled knob).
  static SloConfig from_env();
};

/// Point-in-time SLO state for one tenant (handle).
struct TenantSlo {
  std::uint64_t tenant = 0;
  long long total = 0;        ///< lifetime requests observed
  long long bad = 0;          ///< lifetime SLO violations (slow or failed)
  double burn_short = 0.0;    ///< burn rate over the short window
  double burn_long = 0.0;     ///< burn rate over the long window
  /// Error budget left in the long window: 1.0 = untouched, 0.0 = spent,
  /// negative = overdrawn.
  double budget_remaining = 1.0;
  bool alerting = false;      ///< both windows above burn_alert now
  long long alerts = 0;       ///< transitions into the alerting state
};

/// Thread-safe multi-window burn-rate accountant.  One observe() per
/// settled request; report() snapshots every tenant.
class SloTracker {
 public:
  explicit SloTracker(SloConfig cfg);

  const SloConfig& config() const { return cfg_; }

  /// Account one settled request: bad when it failed or exceeded the
  /// latency threshold.  Returns true when this observation *transitioned*
  /// the tenant into the alerting state (edge, not level — callers log /
  /// dump on the edge without spamming).  `out`, when non-null, receives
  /// the tenant's post-observation snapshot (saves a second lock for
  /// callers exporting gauges per settle).
  bool observe(std::uint64_t tenant, double latency_ms, bool ok,
               TenantSlo* out = nullptr);

  /// Every tenant, keyed order (deterministic output).
  std::vector<TenantSlo> report() const;

  /// One tenant; zero-value TenantSlo (total == 0) for unknown tenants.
  TenantSlo tenant(std::uint64_t t) const;

  /// Tenants currently alerting.
  std::vector<std::uint64_t> alerting() const;

 private:
  struct State {
    std::vector<std::uint8_t> ring;  ///< long_window good(0)/bad(1) marks
    std::size_t next = 0;            ///< ring cursor
    long long count = 0;             ///< samples in ring (<= long_window)
    long long total = 0;
    long long bad_total = 0;
    long long bad_long = 0;   ///< bad marks currently in the ring
    long long bad_short = 0;  ///< bad marks in the trailing short window
    bool alerting = false;
    long long alerts = 0;
  };

  TenantSlo snapshot_locked(std::uint64_t t, const State& s) const;

  SloConfig cfg_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, State> tenants_;
};

}  // namespace mps::serve
