#pragma once
// Synthetic multi-tenant request traces for the serving engine
// (tools/mps_serve, bench/serve_throughput).
//
// Models the traffic shape a production sparse-op service sees: many
// tenants, each pinned to one registered matrix, with Zipf-skewed
// popularity (a few hot tenants dominate — exactly the regime where the
// plan cache and SpMV-batching pay off) and a configurable op mix that
// is mostly SpMV with occasional SpAdd/SpGEMM heavies.  Fully
// deterministic from the seed.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mps::serve {

enum class OpKind { kSpmv, kSpadd, kSpgemm };

struct TraceOp {
  OpKind kind = OpKind::kSpmv;
  std::size_t matrix = 0;    ///< index into the caller's registered set
  std::size_t matrix_b = 0;  ///< second operand (SpAdd/SpGEMM)
  std::uint64_t x_seed = 0;  ///< per-request input-vector seed (SpMV)
};

struct TraceConfig {
  std::size_t requests = 1000;
  double zipf_s = 1.1;       ///< tenant-popularity skew (1 = mild, 2 = heavy)
  int spadd_percent = 4;     ///< % of requests that are SpAdd
  int spgemm_percent = 1;    ///< % of requests that are SpGEMM
  std::uint64_t seed = 42;
};

/// `num_matrices` is the size of the registered-matrix set the trace
/// indexes into (must be >= 1).
std::vector<TraceOp> synthetic_trace(const TraceConfig& cfg,
                                     std::size_t num_matrices);

}  // namespace mps::serve
