#pragma once
// Bounded retry budgets with deterministic exponential backoff.
//
// The engine retries transparently on transient execution faults
// (IntegrityError, PlanMismatchError, DeviceOomError).  A RetryPolicy
// bounds how many attempts a request gets and spaces them with
// exponential backoff whose jitter is a pure function of (request salt,
// attempt) — no wall clock, no global RNG — so a replayed trace backs
// off identically.  Backoff is charged into the request's MODELED
// latency, never slept on the host: the virtual GPU's clock is modeled
// time, and sleeping would couple results to host scheduling.
//
// Deadlines still win: the engine re-checks the request's expiry before
// every retry attempt and settles with RequestTimeoutError instead of
// burning budget on a request nobody is waiting for.
//
// Env knobs (lenient parsing, like the other MPS_SERVE_* tuning knobs):
//   MPS_SERVE_RETRIES        — retries after the first attempt (default 1,
//                              preserving the engine's original
//                              retry-once semantics; 0 disables retry)
//   MPS_SERVE_BACKOFF_MS     — base modeled backoff before retry 1
//                              (default 0.5 ms)
//   MPS_SERVE_BACKOFF_MAX_MS — backoff growth cap (default 8 ms)

#include <cstdint>

namespace mps::serve {

struct RetryPolicy {
  /// Total attempts per request (first try + retries).  0 = resolve from
  /// MPS_SERVE_RETRIES (+1).
  int max_attempts = 0;
  /// Modeled backoff before the first retry; < 0 = resolve from env.
  double backoff_base_ms = -1.0;
  double backoff_multiplier = 2.0;
  /// Cap on the exponential growth; < 0 = resolve from env.
  double backoff_max_ms = -1.0;
  /// Jitter amplitude as a fraction of the computed backoff: the jittered
  /// value lies in [b*(1-f), b*(1+f)).  Deterministic per (salt, retry).
  double jitter_frac = 0.25;

  /// Modeled backoff (ms) charged before retry `retry_index` (1-based:
  /// the retry after the first failed attempt is 1).  `salt` folds in a
  /// stable per-request identifier so concurrent requests don't back off
  /// in lockstep, yet a replay reproduces the same schedule bit for bit.
  double backoff_ms(int retry_index, std::uint64_t salt) const;

  /// Fill any defaulted field from the environment.
  static RetryPolicy resolve(RetryPolicy p);
};

}  // namespace mps::serve
