#pragma once
// Per-matrix-handle circuit breaker (closed / open / half-open).
//
// A matrix whose executions keep failing — corrupted resident data, a
// pathological pattern that OOMs every attempt — would otherwise burn a
// full retry budget on every request routed at it.  The breaker watches
// consecutive execution failures per MatrixHandle key:
//
//   closed     → normal service; `failure_threshold` consecutive
//                failures trip it open
//   open       → admit() fails fast with CircuitOpenError, no queueing,
//                no device time, until `cooldown_ms` of modeled time has
//                elapsed since it opened
//   half-open  → after cooldown, exactly ONE probe request is admitted;
//                success re-closes the breaker, failure re-opens it and
//                restarts the cooldown
//
// Timeouts and load shedding do NOT count as failures — the breaker
// tracks the health of the matrix, not the health of the queue.  The
// clock is the engine's modeled-time clock, keeping trip/ recovery
// points replay-deterministic.
//
// Env knobs (lenient, like other MPS_SERVE_* tuning):
//   MPS_SERVE_BREAKER_THRESHOLD   — consecutive failures to trip
//                                   (default 5; 0 disables the breaker)
//   MPS_SERVE_BREAKER_COOLDOWN_MS — modeled cooldown before the probe
//                                   (default 250 ms)

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/error.hpp"

namespace mps::serve {

/// Fail-fast rejection: the target matrix's circuit breaker is open.
class CircuitOpenError : public mps::Error {
 public:
  explicit CircuitOpenError(const std::string& what) : mps::Error(what) {}
};

struct CircuitBreakerConfig {
  int failure_threshold = -1;  ///< consecutive failures to trip; 0 disables
  double cooldown_ms = -1.0;   ///< modeled ms open before the half-open probe

  /// Fill defaulted (< 0) fields from the environment.
  static CircuitBreakerConfig resolve(CircuitBreakerConfig c);
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Stats {
    long long opened = 0;     ///< closed→open transitions
    long long fail_fast = 0;  ///< admissions rejected while open
    long long probes = 0;     ///< half-open probe admissions
    long long reclosed = 0;   ///< successful probes (open→closed recoveries)
  };

  explicit CircuitBreaker(CircuitBreakerConfig cfg = {})
      : cfg_(CircuitBreakerConfig::resolve(cfg)) {}

  bool enabled() const { return cfg_.failure_threshold > 0; }

  /// Admission gate.  `now_ms` is the engine's modeled clock.  Throws
  /// CircuitOpenError while open; past cooldown, admits one probe and
  /// moves to half-open.
  void admit(std::uint64_t key, double now_ms);

  /// Execution settled successfully (or the probe came back healthy).
  /// Returns true when this success re-closed a tripped breaker.
  bool on_success(std::uint64_t key);

  /// Execution failed after exhausting its retry budget.  Timeouts and
  /// shedding must NOT be reported here.  Returns true when this
  /// failure tripped the breaker open.
  bool on_failure(std::uint64_t key, double now_ms);

  State state(std::uint64_t key) const;
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  struct Entry {
    State state = State::kClosed;
    int consecutive_failures = 0;
    double opened_at_ms = 0.0;
  };

  CircuitBreakerConfig cfg_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  Stats stats_;
};

}  // namespace mps::serve
