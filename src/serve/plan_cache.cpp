#include "serve/plan_cache.hpp"

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace mps::serve {

namespace {

/// Registry handles cached once; bumps after that are lock-free.
struct CacheMetrics {
  telemetry::Counter& hits =
      telemetry::metrics().counter("serve.plan_cache.hits");
  telemetry::Counter& misses =
      telemetry::metrics().counter("serve.plan_cache.misses");
  telemetry::Counter& evictions =
      telemetry::metrics().counter("serve.plan_cache.evictions");
};

CacheMetrics& cache_metrics() {
  static CacheMetrics m;
  return m;
}

}  // namespace

std::uint64_t shard_plan_key(std::uint64_t handle, std::size_t shard,
                             bool replica) {
  // splitmix64 finalizer over the composite — full avalanche, so shard 0
  // of handle h never collides with the unsharded key h itself.
  std::uint64_t z = handle + 0x9e3779b97f4a7c15ull * (2 * shard + (replica ? 1 : 0) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::shared_ptr<const core::merge::SpmvPlan> PlanCache::get_or_build(
    vgpu::Device& device, const sparse::CsrD& a, std::uint64_t key,
    bool* was_hit) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (was_hit) *was_hit = false;
  if (auto it = index_.find(key); it != index_.end()) {
    ++hits_;
    cache_metrics().hits.add();
    if (was_hit) *was_hit = true;
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
    return it->second->plan;
  }
  ++misses_;
  cache_metrics().misses.add();
  telemetry::ScopedSpan build_span("serve.plan_build");
  auto plan = std::make_shared<const core::merge::SpmvPlan>(
      core::merge::spmv_plan(device, a));
  build_span.end();
  const std::size_t bytes = plan->bytes();
  if (bytes > capacity_bytes_) {
    ++oversize_;  // serve it, but never resident
    return plan;
  }
  while (bytes_in_use_ + bytes > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_in_use_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    cache_metrics().evictions.add();
  }
  lru_.push_front(Entry{key, plan, nullptr, bytes});
  index_[key] = lru_.begin();
  bytes_in_use_ += bytes;
  return plan;
}

std::shared_ptr<const autotune::TunedPlan> PlanCache::get_or_build_tuned(
    vgpu::Device& device, const sparse::CsrD& a, std::uint64_t key,
    bool* was_hit) {
  const std::uint64_t tagged = key ^ kTunedKeyTag;
  std::lock_guard<std::mutex> lock(mutex_);
  if (was_hit) *was_hit = false;
  if (auto it = index_.find(tagged); it != index_.end()) {
    ++hits_;
    cache_metrics().hits.add();
    if (was_hit) *was_hit = true;
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
    return it->second->tuned;
  }
  ++misses_;
  cache_metrics().misses.add();
  telemetry::ScopedSpan build_span("serve.tuned_plan_build");
  auto tuned =
      std::make_shared<const autotune::TunedPlan>(autotune::tune(device, a));
  // Plan-decision explainability: with the tracer on, the features the
  // autotuner extracted and every candidate's modeled time land in the
  // trace as children of the build span — the same record explain()
  // serves queryably from the cached entry.
  if (telemetry::tracer().enabled()) {
    auto& tr = telemetry::tracer();
    const telemetry::SpanContext parent = build_span.context();
    const double now = tr.now_us();
    const auto instant = [&](std::string name, std::string status) {
      telemetry::SpanRecord rec;
      rec.trace_id = parent.trace_id;
      rec.parent_id = parent.span_id;
      rec.span_id = tr.next_span_id();
      rec.name = std::move(name);
      rec.track = "autotune";
      rec.status = std::move(status);
      rec.start_us = now;
      rec.dur_us = 0.0;
      rec.tid = telemetry::current_tid();
      tr.record(std::move(rec));
    };
    const autotune::Features& f = tuned->features();
    instant("autotune.features",
            "rows=" + std::to_string(f.rows) + " nnz=" + std::to_string(f.nnz) +
                " avg_row=" + std::to_string(f.avg_row) +
                " cv_row=" + std::to_string(f.cv_row) +
                " empty_frac=" + std::to_string(f.empty_frac));
    for (const autotune::Trial& t : tuned->trials()) {
      instant(std::string("autotune.trial:") + t.name,
              std::to_string(t.modeled_ms) + " ms" +
                  (std::string(t.name) == tuned->choice().name ? " (chosen)"
                                                               : ""));
    }
  }
  build_span.end(tuned->choice().name);
  const std::size_t bytes = tuned->bytes();
  if (bytes > capacity_bytes_) {
    ++oversize_;  // serve it, but never resident
    return tuned;
  }
  while (bytes_in_use_ + bytes > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_in_use_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    cache_metrics().evictions.add();
  }
  lru_.push_front(Entry{tagged, nullptr, tuned, bytes});
  index_[tagged] = lru_.begin();
  bytes_in_use_ += bytes;
  return tuned;
}

std::shared_ptr<const core::merge::SpmvPlan> PlanCache::peek(
    std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : it->second->plan;
}

std::shared_ptr<const autotune::TunedPlan> PlanCache::peek_tuned(
    std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key ^ kTunedKeyTag);
  return it == index_.end() ? nullptr : it->second->tuned;
}

void PlanCache::erase_locked(std::uint64_t tagged_key) {
  if (auto it = index_.find(tagged_key); it != index_.end()) {
    bytes_in_use_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
}

void PlanCache::invalidate(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  erase_locked(key);
  erase_locked(key ^ kTunedKeyTag);
}

void PlanCache::invalidate_tuned(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  erase_locked(key ^ kTunedKeyTag);
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_in_use_ = 0;
}

void PlanCache::set_capacity(std::size_t capacity_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_bytes_ = capacity_bytes;
  while (bytes_in_use_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_in_use_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    cache_metrics().evictions.add();
  }
}

std::vector<std::pair<std::uint64_t, bool>> PlanCache::warm_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::uint64_t, bool>> out;
  out.reserve(lru_.size());
  for (const Entry& e : lru_) {
    const bool tuned = e.tuned != nullptr;
    out.emplace_back(tuned ? (e.key ^ kTunedKeyTag) : e.key, tuned);
  }
  return out;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.oversize = oversize_;
  s.entries = index_.size();
  s.bytes_in_use = bytes_in_use_;
  s.capacity_bytes = capacity_bytes_;
  return s;
}

}  // namespace mps::serve
