#include "serve/trace.hpp"

#include "util/common.hpp"
#include "util/rng.hpp"

namespace mps::serve {

std::vector<TraceOp> synthetic_trace(const TraceConfig& cfg,
                                     std::size_t num_matrices) {
  MPS_CHECK(num_matrices >= 1);
  util::Rng rng(cfg.seed);
  std::vector<TraceOp> ops;
  ops.reserve(cfg.requests);
  for (std::size_t i = 0; i < cfg.requests; ++i) {
    TraceOp op;
    // Zipf rank 1..num_matrices -> matrix index, so matrix 0 is hottest.
    op.matrix = static_cast<std::size_t>(rng.zipf(num_matrices, cfg.zipf_s)) - 1;
    const auto pick = static_cast<int>(rng.uniform(100));
    if (pick < cfg.spgemm_percent) {
      op.kind = OpKind::kSpgemm;
    } else if (pick < cfg.spgemm_percent + cfg.spadd_percent) {
      op.kind = OpKind::kSpadd;
    } else {
      op.kind = OpKind::kSpmv;
    }
    // SpAdd/SpGEMM pair the tenant's matrix with itself: the registered
    // suite has heterogeneous dims, and self-pairing keeps every op
    // dimension-compatible.
    op.matrix_b = op.matrix;
    op.x_seed = rng.next_u64();
    ops.push_back(op);
  }
  return ops;
}

}  // namespace mps::serve
