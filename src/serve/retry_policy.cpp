#include "serve/retry_policy.hpp"

#include <algorithm>

#include "util/env.hpp"
#include "util/rng.hpp"

namespace mps::serve {

double RetryPolicy::backoff_ms(int retry_index, std::uint64_t salt) const {
  if (retry_index < 1 || backoff_base_ms <= 0.0) return 0.0;
  double b = backoff_base_ms;
  for (int i = 1; i < retry_index; ++i) {
    b *= backoff_multiplier;
    if (backoff_max_ms > 0.0 && b >= backoff_max_ms) break;
  }
  if (backoff_max_ms > 0.0) b = std::min(b, backoff_max_ms);
  if (jitter_frac > 0.0) {
    // splitmix64 of (salt, retry) → uniform in [0,1); platform-stable.
    std::uint64_t state =
        salt ^ (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(retry_index));
    const std::uint64_t r = util::splitmix64(state);
    const double u =
        static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);  // 2^53
    b *= 1.0 + jitter_frac * (2.0 * u - 1.0);
  }
  return b;
}

RetryPolicy RetryPolicy::resolve(RetryPolicy p) {
  // Strict parse (the MPS_SERVE_* contract, engine.cpp): garbage or
  // negative budgets raise InvalidInputError instead of clamping.
  if (p.max_attempts <= 0) {
    const long long retries =
        util::env_int_checked("MPS_SERVE_RETRIES", 1, 0, 1000);
    p.max_attempts = static_cast<int>(retries) + 1;
  }
  if (p.backoff_base_ms < 0.0)
    p.backoff_base_ms = util::env_double_checked("MPS_SERVE_BACKOFF_MS", 0.5);
  if (p.backoff_max_ms < 0.0)
    p.backoff_max_ms =
        util::env_double_checked("MPS_SERVE_BACKOFF_MAX_MS", 8.0);
  return p;
}

}  // namespace mps::serve
