#pragma once
// mps::serve::Engine — concurrent batched sparse-op serving
// (docs/serving.md).
//
// The library's kernels are one-shot: you hold a matrix, you call spmv.
// A service sees the transpose of that — a stream of independent
// requests, many of them hitting the same few matrices.  The engine
// turns the stream back into the shapes the kernels are fastest at:
//
//   * plan reuse across requests — registered matrices are keyed by
//     their pattern fingerprint; a capacity-bounded LRU PlanCache
//     (plan_cache.hpp) means repeated SpMV against a matrix never
//     re-runs the merge-path partition, no matter which client sent it;
//   * request coalescing — the dispatcher drains the submission queue
//     and merges up to `batch_window` pending SpMV requests against the
//     same matrix into ONE spmm call (the row-split/SpMM switch of
//     Yang/Buluç/Owens, PAPERS.md), scattering per-column results back
//     to each request's future.  Batched answers are bitwise-identical
//     to one-at-a-time execution (tests/serve_test.cpp): spmm uses the
//     same tile geometry and accumulation order as spmv, so column j of
//     the batch reproduces request j's sum exactly;
//   * admission control — the submission queue is bounded.  try_submit_*
//     rejects instead of blocking; submit_* blocks for queue space up to
//     an admission deadline (then throws QueueFullError).  Queued
//     requests carry an optional per-request timeout: a request that
//     expires before dispatch fails its future with RequestTimeoutError
//     without running.  The dispatcher itself is gated on worker
//     capacity (at most one in-flight batch per worker), so under
//     sustained overload requests wait in the bounded queue — where
//     rejection and timeouts apply — rather than accumulating without
//     bound in the pool's task deque;
//   * fault handling — execution failures propagate through the future
//     as typed mps::Error.  IntegrityError, PlanMismatchError and
//     DeviceOomError get transparent retries under a configurable
//     RetryPolicy (retry_policy.hpp): bounded attempt budget,
//     exponential backoff with deterministic jitter charged into the
//     request's MODELED latency, and the request deadline re-checked
//     before every attempt (an expired request settles with
//     RequestTimeoutError instead of burning budget);
//   * worker supervision — a DeviceLostError (chaos-injected device
//     loss, vgpu/chaos.hpp) quarantines the worker's Device, provisions
//     a fresh one in its slot, drops cached plans (they re-resident
//     lazily on the survivors), and requeues the in-flight batch —
//     bounded by max_failovers per batch, after which the batch settles
//     with the loss error.  No admitted request is ever abandoned;
//   * circuit breaking — a per-matrix-handle breaker
//     (circuit_breaker.hpp) trips open after N consecutive execution
//     failures; submissions against an open handle fail fast at
//     admission with CircuitOpenError until a half-open probe succeeds.
//     Timeouts and shedding never count against the breaker;
//   * graceful degradation — requests carry a Priority class; once the
//     queue crosses the shed watermark, kLow submissions are refused
//     with LoadShedError.  Memory pressure (any DeviceOomError) enters a
//     degraded mode that shrinks the plan-cache budget and serves
//     unbatched SpMV plan-less (bitwise-identical — only the amortization
//     is lost) until `degrade_recovery` consecutive successes restore it;
//   * graceful shutdown — shutdown(kDrain) completes everything already
//     admitted; shutdown(kReject) fails queued-but-unstarted requests
//     with ShutdownError.  Either way every admitted request's future is
//     settled — value or typed error, never abandoned;
//   * multi-device sharding — with MPS_SERVE_DEVICES > 0 the engine
//     runs a vgpu::DeviceSet fleet (possibly heterogeneous,
//     MPS_SERVE_DEVICE_SPEC) instead of one device per worker.  Each
//     registered matrix large enough to shard (MPS_SHARD_MIN_NNZ) is
//     partitioned into nnz-balanced row blocks on the merge-path
//     staircase, placed on consecutive fleet ordinals starting at
//     handle % fleet_size, and executed shard-per-device with a modeled
//     halo exchange (src/shard, docs/sharding.md).  Results stay
//     bitwise-identical to single-device execution; a handle that draws
//     more than MPS_SHARD_REPLICATE_HOT of the sharded traffic gets a
//     second replica placement and requests route across the two by
//     salt parity.  Device loss quarantines only the lost slot — the
//     DeviceSet re-provisions it with identical properties, so the
//     shard layout keyed on slot ordinals stays valid.
//
// Execution runs on a private vgpu::ThreadPool (task mode, try_post);
// the dispatcher is a dedicated thread.  Workers lease devices from the
// fleet (all-or-nothing for a sharded matrix's ordinal set, which is
// also the per-shard in-flight gate: a device hosting a shard runs one
// shard kernel at a time).  Results are deterministic per request
// regardless of thread count, batching, or arrival order, because each
// request's arithmetic is fixed by the kernel geometry — the
// differential tests assert bitwise equality against direct kernel
// calls under every regime.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "durability/durable_store.hpp"
#include "serve/circuit_breaker.hpp"
#include "serve/plan_cache.hpp"
#include "serve/retry_policy.hpp"
#include "serve/slo.hpp"
#include "shard/sharded_matrix.hpp"
#include "vgpu/chaos.hpp"
#include "sparse/csr.hpp"
#include "telemetry/span.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "vgpu/device.hpp"
#include "vgpu/device_set.hpp"
#include "vgpu/thread_pool.hpp"

namespace mps::serve {

// Serving-layer members of the mps::Error taxonomy (util/error.hpp;
// they live here the way DeviceOomError lives in vgpu/memory_model.hpp).

/// Admission failed: the bounded submission queue stayed full past the
/// submit call's admission deadline.
class QueueFullError : public Error {
 public:
  explicit QueueFullError(const std::string& what) : Error(what) {}
};

/// The request's per-request timeout elapsed while it waited in the
/// queue; it was never executed.
class RequestTimeoutError : public Error {
 public:
  explicit RequestTimeoutError(const std::string& what) : Error(what) {}
};

/// The engine shut down (reject mode) before the request ran.
class ShutdownError : public Error {
 public:
  explicit ShutdownError(const std::string& what) : Error(what) {}
};

/// A low-priority submission was refused at admission because queue
/// depth crossed the shed watermark (graceful degradation under
/// overload).  The request never entered the queue; resubmit later or
/// at a higher priority.
class LoadShedError : public Error {
 public:
  explicit LoadShedError(const std::string& what) : Error(what) {}
};

/// Request priority class.  Shedding applies to kLow only: when queue
/// depth crosses `shed_watermark` x capacity, kLow submissions throw
/// LoadShedError while kNormal/kHigh continue to admit (up to the hard
/// queue capacity, which still applies to everyone).
enum class Priority { kHigh, kNormal, kLow };

/// Engine knobs.  Zero-valued fields resolve from the environment
/// (docs/serving.md):
///   MPS_SERVE_THREADS       — worker threads (default 4)
///   MPS_SERVE_QUEUE_CAP     — submission-queue capacity (default 1024)
///   MPS_SERVE_BATCH_WINDOW  — max same-matrix SpMV requests coalesced
///                             into one spmm dispatch (default 8;
///                             1 disables batching)
///   MPS_SERVE_PLAN_CACHE_MB — plan-cache capacity in MiB (default 64)
///   MPS_AUTOTUNE            — unbatched SpMV dispatch runs through the
///                             format/kernel autotuner's TunedPlan
///                             (default 0; docs/autotuning.md)
struct EngineConfig {
  unsigned threads = 0;
  std::size_t queue_capacity = 0;
  int batch_window = 0;
  std::size_t plan_cache_bytes = 0;
  /// < 0: resolve from MPS_AUTOTUNE; 0: static merge path; > 0: tuned
  /// dispatch for unbatched SpMV (batched dispatch always uses the
  /// merge spmm — coalescing already picked the kernel shape).
  int autotune = -1;
  /// Default per-request queue-wait timeout; <= 0 means no timeout.
  std::chrono::milliseconds default_timeout{0};
  /// Construct with the dispatcher paused (tests build deterministic
  /// queue states, then resume()).
  bool start_paused = false;

  /// Retry budget + backoff for transient execution faults; defaulted
  /// fields resolve from MPS_SERVE_RETRIES / MPS_SERVE_BACKOFF_*.
  RetryPolicy retry;
  /// Per-matrix circuit breaker; defaults resolve from
  /// MPS_SERVE_BREAKER_THRESHOLD / MPS_SERVE_BREAKER_COOLDOWN_MS.
  CircuitBreakerConfig breaker;
  /// Queue-depth fraction past which kLow submissions shed; < 0 resolves
  /// from MPS_SERVE_SHED_WATERMARK (default 0.75), 0 disables shedding.
  double shed_watermark = -1.0;
  /// Device-loss failovers tolerated per batch before it settles with
  /// the loss error; < 0 resolves MPS_SERVE_MAX_FAILOVERS (default 8).
  int max_failovers = -1;
  /// Degraded-mode plan-cache budget as a fraction of plan_cache_bytes;
  /// < 0 resolves MPS_SERVE_DEGRADE_CACHE_FRAC (default 0.25).
  double degrade_cache_frac = -1.0;
  /// Consecutive successes that exit degraded mode; < 0 resolves
  /// MPS_SERVE_DEGRADE_RECOVERY (default 64), 0 disables degraded mode.
  int degrade_recovery = -1;
  /// Chaos fault schedule armed on the worker devices at construction
  /// (vgpu/chaos.hpp).  `chaos_enabled`: < 0 = arm `chaos` if non-empty,
  /// else whatever MPS_CHAOS_SCRIPT / MPS_CHAOS_SEED provide; 0 = force
  /// off (the chaos harness's fault-free reference run); > 0 = arm.
  vgpu::ChaosSchedule chaos;
  int chaos_enabled = -1;

  /// Crash-consistent durability (docs/robustness.md).  Empty resolves
  /// from MPS_DURABLE_DIR; with a directory set, every registration is
  /// WAL-appended before it is acknowledged, the background snapshotter
  /// runs, and construction recovers whatever state the directory holds.
  std::string durable_dir;
  /// `durable_enabled`: < 0 = on iff `durable_dir` (or MPS_DURABLE_DIR)
  /// is non-empty; 0 = force off (env ignored — the harness's
  /// non-durable reference leg); > 0 = on, requiring a directory.
  int durable_enabled = -1;
  /// WAL appends between background snapshots; < 0 resolves
  /// MPS_DURABLE_SNAPSHOT_EVERY (default 64), 0 disables the snapshotter
  /// (shutdown still writes a final snapshot).
  long long durable_snapshot_every = -1;
  /// Eagerly rebuild the snapshot's warm plan-cache entries during
  /// recovery; < 0 resolves MPS_DURABLE_WARM (default 0 = lazy).
  int durable_warm = -1;
  /// fsync the WAL after every append; < 0 resolves MPS_DURABLE_FSYNC
  /// (default 0 — process-death durability needs no fsync).
  int durable_fsync = -1;

  /// Multi-device sharding (docs/sharding.md).  All knobs parse
  /// strictly — garbage raises InvalidInputError naming the variable.
  /// Fleet size; < 0 resolves MPS_SERVE_DEVICES (default 0 = legacy
  /// single-device-per-worker mode, byte-identical to pre-shard
  /// behavior).
  int devices = -1;
  /// Fleet heterogeneity spec ("fast*2,slow*2"); empty resolves
  /// MPS_SERVE_DEVICE_SPEC (default empty = all titan).
  std::string device_spec;
  /// Max shards per matrix; <= 0 resolves MPS_SHARD_MAX (default 8).
  int shard_max = 0;
  /// Min nnz per shard — smaller matrices serve unsharded; <= 0
  /// resolves MPS_SHARD_MIN_NNZ (default 2048).
  long long shard_min_nnz = 0;
  /// Placement policy: "weighted" (diagonal spans proportional to each
  /// device's modeled bandwidth) or "uniform"; empty resolves
  /// MPS_SHARD_PLACEMENT (default "weighted").
  std::string shard_placement;
  /// Traffic share past which a sharded handle gets a second replica
  /// placement; < 0 resolves MPS_SHARD_REPLICATE_HOT (default 0.5),
  /// 0 disables replication.
  double shard_replicate_hot = -1.0;
  /// Rows with >= this many nonzeros split 2D across the fleet;
  /// < 0 resolves MPS_SHARD_2D_NNZ (default 0 = off — 2D partials are
  /// deterministic but not bitwise, see docs/sharding.md).
  long long shard_2d_nnz = -1;
  /// Per-tenant SLO tracking (docs/observability.md): every settled
  /// request is scored against the MPS_SLO_* objectives and burn rates
  /// are accounted per handle.  < 0 resolves MPS_SLO (default 0 = off —
  /// settle paths pay nothing).
  int slo_enabled = -1;

  /// Fill zero-valued fields from the environment knobs above.
  static EngineConfig from_env();
};

/// Handle to a registered matrix: a fingerprint of the full sparsity
/// structure (dims, nnz, row offsets, column indices).  Registering a
/// matrix whose structure matches an existing registration returns the
/// same handle (and refreshes the stored values); matrices that differ
/// anywhere in their structure — including in column indices alone —
/// get distinct handles and distinct registry entries, so one tenant's
/// registration can never silently replace another's.  Cached plans
/// stay valid because they depend only on the row structure, which the
/// handle key refines.
using MatrixHandle = std::uint64_t;

struct SpmvResult {
  std::vector<double> y;
  double modeled_ms = 0.0;  ///< this request's share of kernel time
  int batch_size = 1;       ///< requests coalesced into the dispatch
  bool plan_cache_hit = false;
};

struct MatrixResult {
  sparse::CsrD c;
  double modeled_ms = 0.0;
};

/// Options for one submission.
struct SubmitOptions {
  /// How long submit_* may block waiting for queue space; <0 blocks
  /// indefinitely, 0 makes submit behave like try_submit.
  std::chrono::milliseconds admission_timeout{-1};
  /// Queue-wait budget for the request itself; 0 inherits the engine
  /// default, <0 disables.
  std::chrono::milliseconds request_timeout{0};
  /// Shedding class; kLow is refused (LoadShedError) past the watermark.
  Priority priority = Priority::kNormal;
};

/// Point-in-time engine statistics (stats()).
struct EngineStats {
  std::size_t queue_depth = 0;
  std::size_t peak_queue_depth = 0;
  std::size_t queue_capacity = 0;
  long long accepted = 0;
  long long rejected_full = 0;     ///< try_submit refusals + admission timeouts
  long long timed_out = 0;         ///< expired in queue (RequestTimeoutError)
  long long rejected_shutdown = 0; ///< failed with ShutdownError
  long long completed = 0;
  long long failed = 0;            ///< settled with a non-timeout error
  long long retries = 0;           ///< transparent IntegrityError/OOM retries
  long long shed = 0;              ///< kLow submissions refused (LoadShedError)
  long long failovers = 0;         ///< device-loss quarantine + re-provisions
  long long degraded_entered = 0;  ///< memory-pressure degraded-mode entries
  bool degraded = false;           ///< currently in degraded mode
  CircuitBreaker::Stats breaker;
  long long batches = 0;           ///< spmm dispatches with >= 2 requests
  long long max_batch = 0;
  /// batch_histogram[k] = dispatches that coalesced exactly k requests
  /// (index 0 unused).
  std::vector<long long> batch_histogram;
  /// submit -> future-settled wall latency over the most recent
  /// Engine::kLatencyWindow completions (bounded reservoir, so a
  /// long-running engine neither grows without bound nor sorts an
  /// ever-larger sample per stats() call).
  util::Summary latency_ms;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  PlanCache::Stats plan_cache;
  /// Per-fleet-slot execution state — queue depth and in-flight are
  /// reported per device, not as one aggregate (the aggregates above
  /// remain for the whole engine).  One entry per fleet ordinal, in
  /// legacy mode one per worker.
  struct DeviceStats {
    std::string profile;     ///< spec profile name ("titan", "fast", ...)
    double weight = 0.0;     ///< placement weight (modeled bytes/ns)
    bool busy = false;       ///< currently leased to an executing batch
    std::size_t in_flight = 0;  ///< requests executing on this device now
    long long dispatched = 0;   ///< batches this slot has executed
    long long lost = 0;         ///< chaos losses (quarantine + replace)
    long long shards_hosted = 0;  ///< shard placements currently on slot
  };
  std::vector<DeviceStats> devices;
  /// Registered matrices currently sharded / hot-replicated.
  long long sharded_matrices = 0;
  long long replicated_matrices = 0;
  /// WAL/snapshot activity; all-zero (enabled == false) when the engine
  /// runs without a durable directory.
  struct DurabilityStats {
    bool enabled = false;
    long long wal_appends = 0;
    long long wal_bytes = 0;
    long long snapshots = 0;
    durability::RecoveryInfo recovery;
  } durability;
  /// Per-tenant SLO state (empty / enabled == false without MPS_SLO).
  struct SloStats {
    bool enabled = false;
    double latency_ms = 0.0;   ///< good/bad threshold
    double objective = 0.0;
    double burn_alert = 0.0;
    int short_window = 0;
    int long_window = 0;
    long long alerting_now = 0;  ///< tenants currently in alert
    std::vector<TenantSlo> tenants;
  } slo;
};

/// Why a handle dispatches the way it does (Engine::explain): which plan
/// entries are resident, what the autotuner saw and chose, and how the
/// matrix is sharded.  A pure read — no LRU touch, no metric bump, no
/// plan build.
struct PlanExplain {
  MatrixHandle handle = 0;
  bool registered = false;
  bool plan_resident = false;   ///< merge SpmvPlan cached (unsharded key)
  bool tuned_resident = false;  ///< TunedPlan cached (unsharded key)
  /// Winning candidate name when tuned_resident ("merge-path(...)",
  /// "ell", ...); empty otherwise.
  std::string choice;
  double tune_ms = 0.0;    ///< one-time trial cost (tuned only)
  double steady_ms = 0.0;  ///< winner's modeled per-apply cost
  std::size_t plan_bytes = 0;  ///< resident footprint of the entry
  /// The feature vector the autotuner extracted (tuned only).
  autotune::Features features;
  /// Every candidate trialed, with its modeled time (tuned only) — the
  /// full decision record, also logged as "autotune.trial" spans.
  std::vector<autotune::Trial> trials;
  bool sharded = false;
  bool replicated = false;
  int shards = 0;
  std::vector<int> shard_devices;  ///< primary placement ordinals
  /// Resident per-shard plan state, one entry per primary shard:
  /// "tuned:<choice>", "merge", or "cold".
  std::vector<std::string> shard_plans;
};

class Engine {
 public:
  explicit Engine(EngineConfig cfg = EngineConfig::from_env());
  /// Drains (kDrain) and stops.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Recover a crash-consistent engine from `dir` (sugar for setting
  /// cfg.durable_dir + durable_enabled and constructing): loads the
  /// snapshot, replays the WAL tail, and continues serving — new
  /// registrations keep appending to the same log.  Raises RecoveryError
  /// when the directory's state is damaged beyond a torn final record.
  static std::unique_ptr<Engine> recover(const std::string& dir,
                                         EngineConfig cfg = EngineConfig::from_env());

  /// Register a matrix for serving; see MatrixHandle for keying rules.
  /// The matrix is copied into the engine (requests may outlive the
  /// caller's storage).  With durability enabled the registration is
  /// appended to the WAL before this returns — an acknowledged handle
  /// survives any subsequent crash.
  MatrixHandle register_matrix(const sparse::CsrD& a);

  /// True when `h` is registered (recovered or live).
  bool has_matrix(MatrixHandle h) const;
  /// Monotone per-handle registration counter (1 on first registration,
  /// bumped by every re-registration, durable across recovery); 0 for
  /// unknown handles.  The rails for the ROADMAP's mutable matrices.
  std::uint64_t matrix_version(MatrixHandle h) const;
  /// What recovery found at construction (attempted == false without a
  /// durable dir).
  const durability::RecoveryInfo& recovery_info() const { return recovery_info_; }
  /// Ops/test hook: synchronous snapshot + WAL truncation.  No-op
  /// without durability.
  void snapshot_now();

  /// y = A x.  Blocks for queue space up to opts.admission_timeout, then
  /// throws QueueFullError; throws ShutdownError synchronously once
  /// shutdown began; throws InvalidInputError for an unknown handle or
  /// mis-sized x; throws LoadShedError for a kLow request past the shed
  /// watermark and CircuitOpenError while the handle's breaker is open.
  /// All execution outcomes arrive through the future.
  std::future<SpmvResult> submit_spmv(MatrixHandle h, std::vector<double> x,
                                      const SubmitOptions& opts = {});
  /// Non-blocking admission: nullopt when the queue is full or the
  /// engine is shutting down.  Typed admission refusals that are not
  /// capacity (LoadShedError, CircuitOpenError, InvalidInputError)
  /// still propagate as exceptions — they tell the caller something a
  /// nullopt cannot.
  std::optional<std::future<SpmvResult>> try_submit_spmv(
      MatrixHandle h, std::vector<double> x, const SubmitOptions& opts = {});

  /// C = A + B (csrgeam pattern-union semantics).
  std::future<MatrixResult> submit_spadd(MatrixHandle a, MatrixHandle b,
                                         const SubmitOptions& opts = {});
  /// C = A x B.
  std::future<MatrixResult> submit_spgemm(MatrixHandle a, MatrixHandle b,
                                          const SubmitOptions& opts = {});

  /// Block until the queue is empty and no request is executing.
  void drain();

  enum class ShutdownMode {
    kDrain,   ///< run everything already admitted, then stop
    kReject,  ///< fail queued-but-unstarted requests with ShutdownError
  };
  /// Stop admission, settle every admitted request per `mode`, stop the
  /// workers.  Idempotent; later submits throw ShutdownError.
  void shutdown(ShutdownMode mode = ShutdownMode::kDrain);

  /// Test/ops hook: freeze and unfreeze dispatch (admission continues).
  void pause();
  void resume();

  EngineStats stats() const;
  unsigned num_workers() const { return num_workers_; }

  /// Plan-decision explainability for one handle (docs/observability.md):
  /// resident plan entries, the autotuner's features + per-candidate
  /// trial record, and the shard layout.  Read-only — never builds a
  /// plan, never touches LRU order or hit/miss counters.
  PlanExplain explain(MatrixHandle h) const;

  /// Export the correlated Perfetto timeline: every request span recorded
  /// by the telemetry tracer (track "serve"), host phase spans, and each
  /// worker device's kernel log as its own track.  Call only while the
  /// engine is quiescent (after drain() or shutdown()); requires the
  /// tracer to have been enabled while requests ran.
  void write_trace(std::ostream& out) const;

  /// Size of the bounded latency reservoir behind EngineStats::latency_ms
  /// and the p50/p99 snapshot.
  static constexpr std::size_t kLatencyWindow = 4096;

 private:
  struct Request;
  struct Batch;

  /// One registered matrix's shard state (guarded by shard_mutex_).
  struct Sharding {
    std::shared_ptr<const shard::ShardedMatrix> primary;
    std::vector<int> primary_ordinals;
    std::shared_ptr<const shard::ShardedMatrix> replica;  ///< null until hot
    std::vector<int> replica_ordinals;
    long long requests = 0;  ///< sharded SpMV traffic against this handle
  };

  /// The device set a batch executes on: fleet ordinals held
  /// all-or-nothing, plus the shard layout (null for unsharded work).
  struct Lease {
    std::vector<int> ordinals;
    std::vector<vgpu::Device*> devices;  ///< indexed by fleet ordinal
    std::shared_ptr<const shard::ShardedMatrix> sharded;  ///< null = unsharded
    bool replica = false;  ///< which placement the plan keys name
    std::vector<double> weights;  ///< placement weights (matrix ops)
  };

  void dispatcher_loop();
  void dispatch_batch(std::shared_ptr<Batch> batch);
  /// Lease the batch's device set, run it, and on DeviceLostError /
  /// ShardLostError quarantine + re-provision the lost slot and requeue
  /// the batch (up to cfg_.max_failovers, then settle with the loss
  /// error).
  void execute_with_failover(Batch& batch);
  /// Resolve the batch's sharding (routing hot replicas by salt parity)
  /// and block until every required fleet ordinal is free, claiming them
  /// atomically — all-or-nothing, so overlapping leases cannot deadlock.
  Lease acquire_lease(Batch& batch);
  void release_lease(const Lease& lease);
  /// Runs the batch on the leased devices; DeviceLostError propagates to
  /// the failover loop (structurally, a loss can only fire before any
  /// request of the batch has settled — launches and reserves all
  /// precede the first set_value).
  void execute_batch(Batch& batch, Lease& lease);
  void execute_matrix_op(Request& req, Lease& lease);
  void handle_device_loss(std::size_t device_index);
  /// Shard + place a registered matrix (no-op when the fleet or matrix
  /// is too small); rebuilds deterministically on re-registration.
  void build_sharding(MatrixHandle h, const sparse::CsrD& a);
  /// Placement weights for `ordinals` under cfg_.shard_placement.
  std::vector<double> placement_weights(const std::vector<int>& ordinals) const;
  /// Hot-handle accounting (call with shard_mutex_ held): bump the
  /// handle's sharded-request counter and report whether it just crossed
  /// the replication threshold — the caller builds the replica OUTSIDE
  /// the lock (lock order is registry before shard).
  bool note_sharded_request(MatrixHandle h, Sharding& s);
  /// Drop a handle's per-shard plan-cache entries (both placements).
  void invalidate_shard_plans(MatrixHandle h);
  /// Settle-time bookkeeping: engine counters, latency reservoir, and —
  /// when the SLO tracker is on — the tenant's burn-rate accounting
  /// (an alert edge notes the flight recorder and dumps a bundle).
  void settle_metrics(MatrixHandle h, double latency_ms, bool ok);
  /// Flight-recorder state provider: one JSON object of live engine
  /// state.  Best-effort and deadlock-free — every lock is try_lock
  /// (bundles dump from failure paths that may hold engine locks), and
  /// registry_mutex_/shard_mutex_ are never touched (the durable-crash
  /// points fire while the crashing thread holds them).
  void write_bundle_state(std::ostream& out) const;
  /// Called from a retry catch handler after `attempt` (0-based) failed:
  /// rethrows when the budget is spent, settles the deadline re-check
  /// (RequestTimeoutError), counts the retry, and returns the modeled
  /// backoff to charge.
  double prepare_retry(Request& req, int attempt);
  /// Batched variant: additionally prunes requests that expired between
  /// attempts (they settle with RequestTimeoutError; survivors retry).
  double prepare_batch_retry(Batch& batch, int attempt);
  /// Typed failure settle: timeouts count as timed_out (span status
  /// "timeout"), everything else as failed.
  void fail_request(Request& r, const std::exception_ptr& e);
  /// Breaker bookkeeping for one failed execution (timeouts and device
  /// loss excluded — they say nothing about the matrix's health).
  void note_execution_failure(MatrixHandle h, const std::exception_ptr& e);
  /// Breaker close/probe-success + degraded-mode recovery tick.
  void note_success(MatrixHandle h);
  /// DeviceOomError observed: enter degraded mode (shrink the plan-cache
  /// budget; unbatched SpMV goes plan-less until recovery).
  void note_memory_pressure();
  /// Advance the modeled-time clock (breaker cooldowns key off it).
  void charge_modeled(double ms) {
    modeled_clock_us_.fetch_add(static_cast<long long>(ms * 1000.0),
                                std::memory_order_relaxed);
  }
  double modeled_now_ms() const {
    return static_cast<double>(
               modeled_clock_us_.load(std::memory_order_relaxed)) /
           1000.0;
  }
  std::future<SpmvResult> admit_spmv(MatrixHandle h, std::vector<double> x,
                                     const SubmitOptions& opts, bool blocking,
                                     bool* admitted);
  std::future<MatrixResult> admit_matrix_op(bool gemm, MatrixHandle a,
                                            MatrixHandle b,
                                            const SubmitOptions& opts);
  bool admit_locked(std::unique_lock<std::mutex>& lock,
                    const SubmitOptions& opts, bool blocking);
  /// Throws LoadShedError for kLow requests once queue depth reaches the
  /// shed watermark.  Called with queue_mutex_ held.
  void shed_low_priority_locked(const SubmitOptions& opts);

  std::shared_ptr<const sparse::CsrD> lookup(MatrixHandle h) const;

  /// Consistent capture for the durable snapshotter: registry, versions,
  /// warm plan-cache metadata, and the WAL sequence they reflect, all
  /// read under registry_mutex_ (the lock every durable append holds).
  durability::SnapshotData capture_snapshot() const;
  /// Applies recovered state to the registry (validating each matrix
  /// against its recorded handle) and opens the store; optionally
  /// rebuilds warm plans eagerly.  Construction-time only.
  void init_durability();

  EngineConfig cfg_;
  unsigned num_workers_ = 0;

  // The fleet outlives the plan cache (declared first => destroyed
  // last): evicted plans release their accounted device memory on
  // destruction.  Legacy mode (cfg_.devices == 0) builds one titan slot
  // per worker — the exact pre-shard fleet.
  vgpu::DeviceSet fleet_;
  mutable std::mutex devices_mutex_;
  std::condition_variable devices_cv_;
  /// Per-slot lease + lifetime counters (guarded by devices_mutex_).
  struct SlotState {
    bool busy = false;
    std::size_t in_flight = 0;  ///< requests of the leasing batch
    long long dispatched = 0;
    long long lost = 0;
  };
  std::vector<SlotState> slots_;
  /// Devices lost to chaos and replaced by failover.  Kept alive (and
  /// declared before plan_cache_) because cached plans built on them
  /// release their accounted memory on destruction.
  std::vector<std::unique_ptr<vgpu::Device>> quarantined_;

  /// Shard layouts per registered handle (guarded by shard_mutex_;
  /// empty in legacy mode and for matrices below shard_min_nnz).
  mutable std::mutex shard_mutex_;
  std::unordered_map<MatrixHandle, Sharding> shardings_;
  long long sharded_requests_total_ = 0;  ///< guarded by shard_mutex_

  PlanCache plan_cache_;
  CircuitBreaker breaker_;
  /// Per-tenant SLO burn-rate accountant (null unless slo_enabled).
  std::unique_ptr<SloTracker> slo_;
  /// Flight-recorder state-provider registration (-1 = none).
  int flight_state_id_ = -1;
  std::size_t shed_threshold_ = 0;  ///< queue depth; 0 = shedding off
  std::atomic<bool> degraded_{false};
  std::atomic<int> degrade_successes_{0};
  std::atomic<long long> modeled_clock_us_{0};
  std::atomic<std::uint64_t> admit_seq_{0};  ///< retry-jitter salt source

  mutable std::mutex registry_mutex_;
  std::unordered_map<MatrixHandle, std::shared_ptr<const sparse::CsrD>>
      registry_;
  /// Per-handle registration counters; guarded by registry_mutex_.
  std::unordered_map<MatrixHandle, std::uint64_t> versions_;

  /// WAL + snapshotter (null without a durable dir).  Declared after the
  /// registry: the snapshotter thread reads the registry via
  /// capture_snapshot, so it must be stopped (store destroyed) first.
  std::unique_ptr<durability::DurableStore> store_;
  durability::RecoveryInfo recovery_info_;

  // Submission queue + dispatcher state.
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;   ///< dispatcher: work available
  std::condition_variable space_cv_;   ///< submitters: space available
  std::condition_variable idle_cv_;    ///< drain(): queue empty + idle
  std::deque<std::unique_ptr<Request>> queue_;
  std::size_t in_flight_ = 0;          ///< dispatched but not yet settled
  std::size_t in_flight_batches_ = 0;  ///< dispatch gate: <= num_workers_
  bool accepting_ = true;
  bool paused_ = false;
  bool reject_pending_ = false;  ///< shutdown(kReject): fail, don't run
  bool stop_dispatcher_ = false;
  bool shut_down_ = false;

  // Metrics (guarded by stats_mutex_).
  mutable std::mutex stats_mutex_;
  std::size_t peak_queue_depth_ = 0;
  long long accepted_ = 0;
  long long rejected_full_ = 0;
  long long timed_out_ = 0;
  long long rejected_shutdown_ = 0;
  long long completed_ = 0;
  long long failed_ = 0;
  long long retries_ = 0;
  long long shed_ = 0;
  long long failovers_ = 0;
  long long degraded_entered_ = 0;
  long long batches_ = 0;
  long long max_batch_ = 0;
  std::vector<long long> batch_histogram_;
  std::vector<double> latencies_ms_;  ///< ring of <= kLatencyWindow samples
  std::size_t latency_next_ = 0;      ///< ring cursor once the window is full

  vgpu::ThreadPool pool_;
  std::thread dispatcher_;
};

/// The structure fingerprint used for MatrixHandle keys: FNV-1a over the
/// row offsets AND column indices, mixed with dims and nnz.  A strict
/// refinement of the row-structure quantities SpmvPlan's execute-side
/// guard checks, so equal handles always satisfy the plan guard.
MatrixHandle pattern_fingerprint(const sparse::CsrD& a);

}  // namespace mps::serve
