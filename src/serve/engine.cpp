#include "serve/engine.hpp"

#include <algorithm>
#include <utility>

#include "core/spadd.hpp"
#include "core/spgemm.hpp"
#include "core/spmm.hpp"
#include "shard/exec.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profile.hpp"
#include "util/env.hpp"
#include "vgpu/trace.hpp"

namespace mps::serve {

using clock = std::chrono::steady_clock;

MatrixHandle pattern_fingerprint(const sparse::CsrD& a) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.num_rows)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.num_cols)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.nnz())));
  for (const index_t v : a.row_offsets) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
  }
  // Column indices are part of the key: two matrices with identical
  // per-row counts but different columns (any two banded matrices, say)
  // must get distinct handles, or one tenant's registration would
  // silently replace the other's and later submits would compute
  // against the wrong matrix.
  for (const index_t v : a.col) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
  }
  return h;
}

namespace {

EngineConfig resolve_config(EngineConfig cfg) {
  // Every MPS_SERVE_* knob parses strictly (the MPS_FAULT_*/MPS_CHAOS_*
  // pattern): a negative count or non-numeric garbage in a production
  // environment is a deploy bug, and silently clamping it to a default
  // hides the bug until it pages someone.  InvalidInputError names the
  // offending variable.
  if (cfg.threads == 0) {
    cfg.threads = static_cast<unsigned>(
        util::env_int_checked("MPS_SERVE_THREADS", 4, 1, 1024));
  }
  if (cfg.queue_capacity == 0) {
    cfg.queue_capacity = static_cast<std::size_t>(
        util::env_int_checked("MPS_SERVE_QUEUE_CAP", 1024, 1, 1ll << 30));
  }
  if (cfg.batch_window == 0) {
    cfg.batch_window = static_cast<int>(
        util::env_int_checked("MPS_SERVE_BATCH_WINDOW", 8, 1, 4096));
  }
  if (cfg.plan_cache_bytes == 0) {
    cfg.plan_cache_bytes =
        static_cast<std::size_t>(
            util::env_int_checked("MPS_SERVE_PLAN_CACHE_MB", 64, 1, 1ll << 20)) *
        (1u << 20);
  }
  if (cfg.autotune < 0) {
    cfg.autotune = autotune::enabled() ? 1 : 0;
  }
  cfg.retry = RetryPolicy::resolve(cfg.retry);
  cfg.breaker = CircuitBreakerConfig::resolve(cfg.breaker);
  if (cfg.shed_watermark < 0.0) {
    cfg.shed_watermark =
        util::env_double_checked("MPS_SERVE_SHED_WATERMARK", 0.75);
  }
  if (cfg.max_failovers < 0) {
    cfg.max_failovers = static_cast<int>(
        util::env_int_checked("MPS_SERVE_MAX_FAILOVERS", 8, 0, 1 << 20));
  }
  if (cfg.degrade_cache_frac < 0.0) {
    cfg.degrade_cache_frac =
        util::env_double_checked("MPS_SERVE_DEGRADE_CACHE_FRAC", 0.25);
  }
  if (cfg.degrade_recovery < 0) {
    cfg.degrade_recovery = static_cast<int>(
        util::env_int_checked("MPS_SERVE_DEGRADE_RECOVERY", 64, 0, 1 << 30));
  }
  // Durability: MPS_DURABLE_DIR arms the WAL + snapshot layer; like the
  // chaos knobs, durable_enabled == 0 forces it off so the kill harness
  // can run its non-durable reference leg in the same environment.
  if (cfg.durable_enabled != 0 && cfg.durable_dir.empty()) {
    cfg.durable_dir = util::env_string("MPS_DURABLE_DIR", "");
  }
  if (cfg.durable_enabled < 0) cfg.durable_enabled = cfg.durable_dir.empty() ? 0 : 1;
  if (cfg.durable_enabled > 0 && cfg.durable_dir.empty()) {
    throw InvalidInputError(
        "serve: durability enabled but no directory (set cfg.durable_dir or "
        "MPS_DURABLE_DIR)");
  }
  if (cfg.durable_snapshot_every < 0) {
    cfg.durable_snapshot_every =
        util::env_int_checked("MPS_DURABLE_SNAPSHOT_EVERY", 64, 0, 1ll << 30);
  }
  if (cfg.durable_warm < 0) {
    cfg.durable_warm =
        static_cast<int>(util::env_int_checked("MPS_DURABLE_WARM", 0, 0, 1));
  }
  if (cfg.durable_fsync < 0) {
    cfg.durable_fsync =
        static_cast<int>(util::env_int_checked("MPS_DURABLE_FSYNC", 0, 0, 1));
  }
  // Sharded serving fleet (docs/sharding.md).  Same strict-parse rule as
  // every other knob.
  if (cfg.devices < 0) {
    cfg.devices =
        static_cast<int>(util::env_int_checked("MPS_SERVE_DEVICES", 0, 0, 256));
  }
  if (cfg.device_spec.empty()) {
    cfg.device_spec = util::env_string("MPS_SERVE_DEVICE_SPEC", "");
  }
  if (cfg.shard_max <= 0) {
    cfg.shard_max =
        static_cast<int>(util::env_int_checked("MPS_SHARD_MAX", 8, 1, 256));
  }
  if (cfg.shard_min_nnz <= 0) {
    cfg.shard_min_nnz =
        util::env_int_checked("MPS_SHARD_MIN_NNZ", 2048, 1, 1ll << 40);
  }
  if (cfg.shard_placement.empty()) {
    cfg.shard_placement = util::env_string("MPS_SHARD_PLACEMENT", "weighted");
  }
  if (cfg.shard_placement != "weighted" && cfg.shard_placement != "uniform") {
    throw InvalidInputError(
        "MPS_SHARD_PLACEMENT: expected 'weighted' or 'uniform', got '" +
        cfg.shard_placement + "'");
  }
  if (cfg.shard_replicate_hot < 0.0) {
    cfg.shard_replicate_hot =
        util::env_double_checked("MPS_SHARD_REPLICATE_HOT", 0.5);
  }
  if (cfg.shard_replicate_hot > 1.0) {
    throw InvalidInputError(
        "MPS_SHARD_REPLICATE_HOT: traffic share must be in [0, 1], got " +
        std::to_string(cfg.shard_replicate_hot));
  }
  if (cfg.shard_2d_nnz < 0) {
    cfg.shard_2d_nnz = util::env_int_checked("MPS_SHARD_2D_NNZ", 0, 0, 1ll << 40);
  }
  if (cfg.slo_enabled < 0) {
    cfg.slo_enabled =
        static_cast<int>(util::env_int_checked("MPS_SLO", 0, 0, 1));
  }
  // Chaos resolves AFTER threads and the fleet size: the seeded
  // generator spreads events over the fleet's slot ordinals (the worker
  // count in legacy mode).  chaos_enabled == 0 is the chaos harness's
  // fault-free reference run — the env knobs are ignored so the same
  // process can run both legs.
  if (cfg.chaos_enabled != 0 && cfg.chaos.empty()) {
    cfg.chaos = vgpu::ChaosSchedule::from_env(
        cfg.devices > 0 ? cfg.devices : static_cast<int>(cfg.threads));
  }
  if (cfg.chaos_enabled < 0) cfg.chaos_enabled = cfg.chaos.empty() ? 0 : 1;
  return cfg;
}

/// Registry handles resolved once; every bump after that is a relaxed
/// atomic (docs/observability.md).  These mirror the per-engine counters
/// under stats_mutex_ — the registry aggregates across engines and is
/// what --metrics-out / MPS_METRICS_DUMP_MS export.
struct ServeMetrics {
  telemetry::Counter& accepted =
      telemetry::metrics().counter("serve.requests.accepted");
  telemetry::Counter& rejected_full =
      telemetry::metrics().counter("serve.requests.rejected_full");
  telemetry::Counter& timed_out =
      telemetry::metrics().counter("serve.requests.timed_out");
  telemetry::Counter& rejected_shutdown =
      telemetry::metrics().counter("serve.requests.rejected_shutdown");
  telemetry::Counter& completed =
      telemetry::metrics().counter("serve.requests.completed");
  telemetry::Counter& failed =
      telemetry::metrics().counter("serve.requests.failed");
  telemetry::Counter& retries =
      telemetry::metrics().counter("serve.requests.retries");
  telemetry::Counter& batches =
      telemetry::metrics().counter("serve.batches.coalesced");
  telemetry::Counter& shed =
      telemetry::metrics().counter("serve.requests.shed");
  telemetry::Counter& failovers =
      telemetry::metrics().counter("serve.failovers");
  telemetry::Counter& breaker_opened =
      telemetry::metrics().counter("serve.breaker.opened");
  telemetry::Counter& breaker_fail_fast =
      telemetry::metrics().counter("serve.breaker.fail_fast");
  telemetry::Counter& degraded_entered =
      telemetry::metrics().counter("serve.degraded.entered");
  telemetry::Gauge& degraded = telemetry::metrics().gauge("serve.degraded");
  telemetry::Counter& slo_alerts =
      telemetry::metrics().counter("serve.slo.alerts");
  telemetry::Gauge& peak_queue =
      telemetry::metrics().gauge("serve.queue.peak_depth");
  telemetry::Histogram& latency_ms = telemetry::metrics().histogram(
      "serve.latency_ms", telemetry::default_latency_bounds_ms());
};

ServeMetrics& serve_metrics() {
  static ServeMetrics m;
  return m;
}

/// Per-fleet-slot registry handles ("serve.device.N.*") — exported like
/// every other registry metric through --metrics-out / Prometheus.
telemetry::Gauge& device_gauge(std::size_t ordinal, const char* what) {
  return telemetry::metrics().gauge("serve.device." + std::to_string(ordinal) +
                                    "." + what);
}

telemetry::Counter& device_counter(std::size_t ordinal, const char* what) {
  return telemetry::metrics().counter("serve.device." +
                                      std::to_string(ordinal) + "." + what);
}

/// Per-tenant SLO registry handles ("serve.slo.tenant.<handle>.*") —
/// exported like every other registry metric (Prometheus / --metrics-out).
telemetry::Gauge& slo_gauge(std::uint64_t tenant, const char* what) {
  return telemetry::metrics().gauge("serve.slo.tenant." +
                                    std::to_string(tenant) + "." + what);
}

}  // namespace

EngineConfig EngineConfig::from_env() { return resolve_config(EngineConfig{}); }

// ---------------------------------------------------------------------------
// Request / batch plumbing

struct Engine::Request {
  enum class Kind { kSpmv, kSpadd, kSpgemm };
  Kind kind = Kind::kSpmv;
  MatrixHandle handle_a = 0;
  std::shared_ptr<const sparse::CsrD> a;
  std::shared_ptr<const sparse::CsrD> b;  // SpAdd/SpGEMM only
  std::vector<double> x;                  // SpMV only
  std::promise<SpmvResult> spmv_promise;
  std::promise<MatrixResult> matrix_promise;
  clock::time_point submitted;
  std::optional<clock::time_point> expires;  ///< queue-wait deadline
  /// Stable jitter salt for RetryPolicy::backoff_ms: handle mixed with
  /// the admission ordinal, so concurrent requests don't back off in
  /// lockstep yet a replayed trace reproduces the same schedule.
  std::uint64_t salt = 0;
  // Telemetry: a fresh trace opened at admission (zero while the tracer
  // is disabled).  The request span is recorded manually at settle time
  // because it crosses threads: admitted on the client thread, settled
  // on a worker.
  telemetry::SpanContext span_ctx;
  double span_start_us = -1.0;
  std::uint32_t span_tid = 0;

  bool expired(clock::time_point now) const { return expires && now >= *expires; }

  void open_span() {
    auto& tr = telemetry::tracer();
    if (!tr.enabled()) return;
    span_ctx = telemetry::SpanContext{tr.next_trace_id(), tr.next_span_id()};
    span_start_us = tr.now_us();
    span_tid = telemetry::current_tid();
  }

  /// Record the request span with the given outcome; idempotent (the
  /// first caller wins, so a specific "timeout"/"shutdown" status set
  /// before fail() is not overwritten by fail()'s generic "error").
  void finish_span(const char* status) {
    if (!span_ctx.active()) return;
    auto& tr = telemetry::tracer();
    telemetry::SpanRecord rec;
    rec.trace_id = span_ctx.trace_id;
    rec.span_id = span_ctx.span_id;
    rec.name = "serve.request";
    rec.track = "serve";
    rec.status = status;
    rec.start_us = span_start_us;
    rec.dur_us = tr.now_us() - span_start_us;
    rec.tid = span_tid;
    tr.record(std::move(rec));
    span_ctx = telemetry::SpanContext{};
  }

  void fail(std::exception_ptr e) {
    finish_span("error");
    // A request whose promise is already settled (e.g. a failure after a
    // partial batch scatter) must not re-throw out of the worker.
    try {
      if (kind == Kind::kSpmv) {
        spmv_promise.set_exception(std::move(e));
      } else {
        matrix_promise.set_exception(std::move(e));
      }
    } catch (const std::future_error&) {
    }
  }
};

/// One dispatch unit: either N coalesced SpMV requests against the same
/// matrix, or a single SpAdd/SpGEMM request.
struct Engine::Batch {
  std::vector<std::unique_ptr<Request>> reqs;
};

// ---------------------------------------------------------------------------
// Lifecycle

Engine::Engine(EngineConfig cfg)
    : cfg_(resolve_config(cfg)),
      num_workers_(cfg_.threads),
      // Legacy mode (devices == 0) builds one titan slot per worker —
      // the exact pre-shard fleet.  Sharded mode sizes the fleet from
      // MPS_SERVE_DEVICES and shapes it from MPS_SERVE_DEVICE_SPEC.
      fleet_(vgpu::parse_device_spec(
          cfg_.device_spec,
          cfg_.devices > 0 ? cfg_.devices : static_cast<int>(cfg_.threads),
          "MPS_SERVE_DEVICE_SPEC")),
      plan_cache_(cfg_.plan_cache_bytes),
      breaker_(cfg_.breaker),
      paused_(cfg_.start_paused),
      batch_histogram_(static_cast<std::size_t>(cfg_.batch_window) + 1, 0),
      // ThreadPool counts the constructing thread as a participant; the
      // engine needs cfg_.threads *dedicated* workers for posted tasks.
      pool_(num_workers_ + 1) {
  if (cfg_.shed_watermark > 0.0) {
    shed_threshold_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(cfg_.shed_watermark *
                                    static_cast<double>(cfg_.queue_capacity)));
  }
  slots_.resize(fleet_.size());
  if (cfg_.chaos_enabled > 0) {
    for (std::size_t i = 0; i < fleet_.size(); ++i) {
      fleet_.device(i).fault_injector().arm_chaos(cfg_.chaos,
                                                  static_cast<int>(i));
    }
  }
  if (cfg_.slo_enabled > 0) {
    slo_ = std::make_unique<SloTracker>(SloConfig::from_env());
  }
  // Recovery runs before the dispatcher exists: the registry fills (and
  // warm plans rebuild) while construction is still single-threaded, so
  // the first request after a restart sees the full pre-crash state.
  if (cfg_.durable_enabled > 0) {
    try {
      init_durability();
    } catch (const RecoveryError& e) {
      // Damaged durable state is exactly when an operator needs the
      // bundle: recent events plus whatever state assembled before the
      // failure (no-op unless MPS_FLIGHT_DIR is set).
      telemetry::flight().note("fault", "recovery", e.what());
      telemetry::flight().dump_bundle("recovery");
      throw;
    }
  }
  flight_state_id_ = telemetry::flight().register_state_provider(
      "serve.engine", [this](std::ostream& out) { write_bundle_state(out); });
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

std::unique_ptr<Engine> Engine::recover(const std::string& dir,
                                        EngineConfig cfg) {
  cfg.durable_dir = dir;
  cfg.durable_enabled = 1;
  return std::make_unique<Engine>(std::move(cfg));
}

void Engine::init_durability() {
  auto recovered = durability::recover_dir(cfg_.durable_dir);
  for (auto& m : recovered.matrices) {
    // The handle is the full-structure fingerprint; a recovered matrix
    // that no longer hashes to its recorded handle means the bytes on
    // disk drifted from what was acknowledged — refuse to serve it.
    if (pattern_fingerprint(*m.matrix) != m.handle) {
      throw RecoveryError(
          "serve: recovered matrix does not fingerprint to its recorded "
          "handle " +
          std::to_string(m.handle));
    }
    registry_[m.handle] = m.matrix;
    versions_[m.handle] = m.version;
  }
  recovery_info_ = recovered.info;
  if (cfg_.durable_warm > 0 && fleet_.size() > 0) {
    // Eager warm-up: rebuild the snapshot's warm plan set on worker 0 so
    // the first post-restart request pays no partition (or autotune
    // trial) cost.  Plans are deterministic rebuilds — results are
    // bitwise-identical either way; only the modeled cost of the first
    // touch moves.
    vgpu::Device& device = fleet_.device(0);
    for (const auto& w : recovered.warm) {
      auto it = registry_.find(w.handle);
      if (it == registry_.end()) continue;
      if (w.tuned) {
        if (cfg_.autotune > 0) {
          plan_cache_.get_or_build_tuned(device, *it->second, w.handle);
        }
      } else {
        plan_cache_.get_or_build(device, *it->second, w.handle);
      }
    }
  }
  if (cfg_.devices > 0) {
    // Shard layouts are a deterministic function of (matrix, fleet,
    // knobs): recovery re-derives them rather than trusting bytes on
    // disk.  When the snapshot's fleet shape matches the current one,
    // the recorded primary layouts double as an integrity cross-check.
    for (const auto& entry : registry_) build_sharding(entry.first, *entry.second);
    if (recovered.fleet_devices == static_cast<std::uint32_t>(fleet_.size())) {
      std::lock_guard<std::mutex> slock(shard_mutex_);
      for (const auto& rec : recovered.shard_layouts) {
        if (rec.replica) continue;  // traffic-derived; rebuilt lazily
        const auto mismatch = [&rec](const std::string& why) {
          throw RecoveryError("serve: recovered shard layout for handle " +
                              std::to_string(rec.handle) +
                              " does not match the deterministic re-shard "
                              "(" + why + ")");
        };
        const auto it = shardings_.find(rec.handle);
        if (it == shardings_.end() || !it->second.primary) {
          mismatch("matrix no longer shards");
        }
        const auto& shards = it->second.primary->shards();
        if (shards.size() != rec.blocks.size()) mismatch("shard count");
        for (std::size_t k = 0; k < shards.size(); ++k) {
          if (shards[k].row_begin != rec.blocks[k].row_begin ||
              shards[k].row_end != rec.blocks[k].row_end ||
              shards[k].device != rec.blocks[k].device) {
            mismatch("block " + std::to_string(k));
          }
        }
      }
    }
  }
  store_ = std::make_unique<durability::DurableStore>(
      durability::DurableConfig{cfg_.durable_dir, cfg_.durable_snapshot_every,
                                cfg_.durable_fsync > 0},
      recovered, [this] { return capture_snapshot(); });
}

durability::SnapshotData Engine::capture_snapshot() const {
  durability::SnapshotData data;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  data.matrices.reserve(registry_.size());
  for (const auto& [h, m] : registry_) {
    durability::MatrixRecord rec;
    rec.handle = h;
    const auto vit = versions_.find(h);
    rec.version = vit == versions_.end() ? 1 : vit->second;
    rec.matrix = m;
    data.matrices.push_back(std::move(rec));
  }
  // Appends run under registry_mutex_ too (register_matrix), so reading
  // last_seq here gives a capture that covers exactly seq <= last_seq.
  data.last_seq = store_->last_seq();
  for (const auto& [key, tuned] : plan_cache_.warm_entries()) {
    // Warm metadata only for handles that are still registered: a plan
    // can outlive its registration in the LRU.
    if (registry_.count(key) != 0) data.warm.push_back({key, tuned});
  }
  // Shard placements (inner lock: the order everywhere is registry
  // before shard).  fleet_devices == 0 marks a legacy-mode snapshot.
  data.fleet_devices =
      cfg_.devices > 0 ? static_cast<std::uint32_t>(fleet_.size()) : 0;
  {
    std::lock_guard<std::mutex> slock(shard_mutex_);
    for (const auto& entry : shardings_) {
      if (registry_.count(entry.first) == 0) continue;
      const auto record = [&](const shard::ShardedMatrix& sm, bool replica) {
        durability::ShardLayoutRecord rec;
        rec.handle = entry.first;
        rec.replica = replica;
        rec.blocks.reserve(sm.shards().size());
        for (const auto& sh : sm.shards()) {
          rec.blocks.push_back({static_cast<std::int32_t>(sh.row_begin),
                                static_cast<std::int32_t>(sh.row_end),
                                static_cast<std::int32_t>(sh.device)});
        }
        data.shard_layouts.push_back(std::move(rec));
      };
      if (entry.second.primary) record(*entry.second.primary, false);
      if (entry.second.replica) record(*entry.second.replica, true);
    }
  }
  return data;
}

void Engine::snapshot_now() {
  if (store_) store_->snapshot_now();
}

Engine::~Engine() {
  shutdown(ShutdownMode::kDrain);
  if (flight_state_id_ >= 0) {
    telemetry::flight().unregister_state_provider(flight_state_id_);
  }
}

void Engine::shutdown(ShutdownMode mode) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
    accepting_ = false;
    paused_ = false;  // drain mode must actually run what's queued
    reject_pending_ = (mode == ShutdownMode::kReject);
    stop_dispatcher_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  dispatcher_.join();
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    idle_cv_.wait(lock, [&] { return in_flight_ == 0; });
  }
  // Every task the dispatcher posted has settled; the pool drains
  // nothing and joins its workers (tasks posted after this — there are
  // none — would be rejected deterministically).
  pool_.shutdown();
  // Graceful exit leaves a fresh snapshot and an empty WAL tail: the
  // next boot recovers without replay, and MPS_DURABLE_WARM gets the
  // final warm-set metadata.
  if (store_) store_->snapshot_now();
}

void Engine::pause() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    paused_ = true;
  }
  idle_cv_.notify_all();  // drain() waiters unblock on pause
}

void Engine::resume() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    paused_ = false;
  }
  queue_cv_.notify_all();
}

void Engine::drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  idle_cv_.wait(lock, [&] {
    return (queue_.empty() && in_flight_ == 0) || paused_;
  });
}

// ---------------------------------------------------------------------------
// Registration + admission

MatrixHandle Engine::register_matrix(const sparse::CsrD& a) {
  if (!a.is_valid()) {
    throw InvalidInputError("register_matrix: structurally invalid CSR");
  }
  const MatrixHandle h = pattern_fingerprint(a);
  auto copy = std::make_shared<const sparse::CsrD>(a);
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    const std::uint64_t version = versions_[h] + 1;
    // Durable-ack ordering: the WAL append completes BEFORE the registry
    // insert and before the caller sees the handle.  If the append
    // throws, nothing was acknowledged and nothing became visible — the
    // crash contract "every acknowledged registration survives" follows
    // from this line ordering, not from fsync.
    if (store_) store_->append_register(h, version, a);
    versions_[h] = version;
    registry_[h] = std::move(copy);  // same pattern => refreshed values
  }
  // A tuned plan may hold format-converted storage bound to the previous
  // registration's value buffer; re-registration (even with an identical
  // pattern) must drop it.  Merge plans are value-free and stay valid.
  plan_cache_.invalidate_tuned(h);
  // Sharded mode: drop the handle's per-shard plans (tuned shard entries
  // have the same stale-value hazard) and rebuild the layout — identical
  // structure re-shards identically, but the shard-local value buffers
  // must refresh.
  invalidate_shard_plans(h);
  build_sharding(h, a);
  return h;
}

// ---------------------------------------------------------------------------
// Sharding

std::vector<double> Engine::placement_weights(
    const std::vector<int>& ordinals) const {
  std::vector<double> w(ordinals.size(), 1.0);
  if (cfg_.shard_placement == "weighted") {
    for (std::size_t i = 0; i < ordinals.size(); ++i) {
      w[i] = fleet_.weight(static_cast<std::size_t>(ordinals[i]));
    }
  }
  return w;
}

void Engine::build_sharding(MatrixHandle h, const sparse::CsrD& a) {
  if (cfg_.devices <= 0) return;
  const int fleet = static_cast<int>(fleet_.size());
  // Width: enough shards to give each one >= shard_min_nnz work, capped
  // by the fleet, the knob, and the row count (a shard must own rows).
  long long width64 = std::max<long long>(1, a.nnz() / cfg_.shard_min_nnz);
  width64 = std::min<long long>(width64, std::min(fleet, cfg_.shard_max));
  width64 = std::min<long long>(width64, std::max<index_t>(1, a.num_rows));
  const int width = static_cast<int>(width64);
  if (width <= 1) {
    std::lock_guard<std::mutex> lock(shard_mutex_);
    shardings_.erase(h);
    return;
  }
  // Deterministic placement: consecutive ordinals starting at h % fleet,
  // so independent tenants' primaries spread over the fleet instead of
  // all stacking on slot 0.
  const int start = static_cast<int>(h % static_cast<std::uint64_t>(fleet));
  std::vector<int> ordinals(static_cast<std::size_t>(width));
  for (int k = 0; k < width; ++k) {
    ordinals[static_cast<std::size_t>(k)] = (start + k) % fleet;
  }
  auto weights = placement_weights(ordinals);
  shard::ShardOptions opt;
  opt.split_2d_nnz = cfg_.shard_2d_nnz;
  auto sm =
      std::make_shared<const shard::ShardedMatrix>(a, ordinals, weights, opt);
  std::lock_guard<std::mutex> lock(shard_mutex_);
  Sharding& s = shardings_[h];
  s.primary = std::move(sm);
  s.primary_ordinals = std::move(ordinals);
  // Hotness-derived state resets with the registration; the request
  // counter survives (the handle's traffic history is still real).
  s.replica.reset();
  s.replica_ordinals.clear();
}

bool Engine::note_sharded_request(MatrixHandle, Sharding& s) {
  ++sharded_requests_total_;
  ++s.requests;
  if (s.replica || cfg_.shard_replicate_hot <= 0.0) return false;
  // A replica needs a disjoint second placement of the same width.
  if (2 * s.primary_ordinals.size() > fleet_.size()) return false;
  // Warm-up floor: one early request is 100% of nothing.
  if (sharded_requests_total_ < 8) return false;
  return static_cast<double>(s.requests) >=
         cfg_.shard_replicate_hot * static_cast<double>(sharded_requests_total_);
}

void Engine::invalidate_shard_plans(MatrixHandle h) {
  std::size_t primary = 0;
  std::size_t replica = 0;
  {
    std::lock_guard<std::mutex> lock(shard_mutex_);
    const auto it = shardings_.find(h);
    if (it == shardings_.end()) return;
    if (it->second.primary) primary = it->second.primary->shards().size();
    if (it->second.replica) replica = it->second.replica->shards().size();
  }
  for (std::size_t i = 0; i < primary; ++i) {
    plan_cache_.invalidate(shard_plan_key(h, i, false));
  }
  for (std::size_t i = 0; i < replica; ++i) {
    plan_cache_.invalidate(shard_plan_key(h, i, true));
  }
}

std::shared_ptr<const sparse::CsrD> Engine::lookup(MatrixHandle h) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  if (auto it = registry_.find(h); it != registry_.end()) return it->second;
  throw InvalidInputError("serve: unknown matrix handle " + std::to_string(h));
}

bool Engine::has_matrix(MatrixHandle h) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return registry_.count(h) != 0;
}

std::uint64_t Engine::matrix_version(MatrixHandle h) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = versions_.find(h);
  return it == versions_.end() ? 0 : it->second;
}

void Engine::shed_low_priority_locked(const SubmitOptions& opts) {
  if (opts.priority != Priority::kLow || shed_threshold_ == 0 ||
      queue_.size() < shed_threshold_) {
    return;
  }
  {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++shed_;
  }
  serve_metrics().shed.add();
  throw LoadShedError("serve: low-priority request shed (queue depth " +
                      std::to_string(queue_.size()) + " >= watermark " +
                      std::to_string(shed_threshold_) + ")");
}

/// Waits for queue space per `opts`/`blocking`; returns false when the
/// request must be rejected (queue full).  Throws ShutdownError once
/// admission is closed.  Called with queue_mutex_ held.
bool Engine::admit_locked(std::unique_lock<std::mutex>& lock,
                          const SubmitOptions& opts, bool blocking) {
  const auto closed = [&] {
    if (!accepting_) throw ShutdownError("serve: engine is shut down");
  };
  closed();
  if (queue_.size() < cfg_.queue_capacity) return true;
  if (!blocking || opts.admission_timeout.count() == 0) return false;
  const bool bounded = opts.admission_timeout.count() > 0;
  const auto deadline = clock::now() + opts.admission_timeout;
  while (queue_.size() >= cfg_.queue_capacity) {
    if (bounded) {
      if (space_cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
          queue_.size() >= cfg_.queue_capacity) {
        return false;
      }
    } else {
      space_cv_.wait(lock);
    }
    closed();
  }
  return true;
}

std::future<SpmvResult> Engine::admit_spmv(MatrixHandle h,
                                           std::vector<double> x,
                                           const SubmitOptions& opts,
                                           bool blocking, bool* admitted) {
  auto a = lookup(h);  // throws for unknown handles, before queueing
  if (x.size() != static_cast<std::size_t>(a->num_cols)) {
    throw InvalidInputError("serve: x has " + std::to_string(x.size()) +
                            " entries, matrix has " +
                            std::to_string(a->num_cols) + " columns");
  }
  // Fail fast while the handle's circuit is open: no queueing, no device
  // time, a synchronous CircuitOpenError at the submit call.
  try {
    breaker_.admit(h, modeled_now_ms());
  } catch (const CircuitOpenError&) {
    serve_metrics().breaker_fail_fast.add();
    throw;
  }
  auto req = std::make_unique<Request>();
  req->kind = Request::Kind::kSpmv;
  req->handle_a = h;
  req->a = std::move(a);
  req->x = std::move(x);
  req->submitted = clock::now();
  req->salt = h ^ (admit_seq_.fetch_add(1, std::memory_order_relaxed) *
                   0x9E3779B97F4A7C15ull);
  req->open_span();
  auto timeout = opts.request_timeout.count() != 0 ? opts.request_timeout
                                                   : cfg_.default_timeout;
  if (timeout.count() > 0) req->expires = req->submitted + timeout;
  auto future = req->spmv_promise.get_future();

  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    shed_low_priority_locked(opts);  // throws LoadShedError past watermark
    if (!admit_locked(lock, opts, blocking)) {
      {
        std::lock_guard<std::mutex> slock(stats_mutex_);
        ++rejected_full_;
      }
      serve_metrics().rejected_full.add();
      *admitted = false;
      if (!blocking) return future;  // caller discards; nullopt instead
      throw QueueFullError("serve: submission queue full (capacity " +
                           std::to_string(cfg_.queue_capacity) + ")");
    }
    queue_.push_back(std::move(req));
    serve_metrics().accepted.add();
    serve_metrics().peak_queue.update_max(static_cast<double>(queue_.size()));
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++accepted_;
    peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
  }
  queue_cv_.notify_one();
  *admitted = true;
  return future;
}

std::future<SpmvResult> Engine::submit_spmv(MatrixHandle h,
                                            std::vector<double> x,
                                            const SubmitOptions& opts) {
  bool admitted = false;
  auto future = admit_spmv(h, std::move(x), opts, /*blocking=*/true, &admitted);
  return future;  // !admitted cases threw
}

std::optional<std::future<SpmvResult>> Engine::try_submit_spmv(
    MatrixHandle h, std::vector<double> x, const SubmitOptions& opts) {
  bool admitted = false;
  try {
    auto future =
        admit_spmv(h, std::move(x), opts, /*blocking=*/false, &admitted);
    if (!admitted) return std::nullopt;
    return future;
  } catch (const ShutdownError&) {
    return std::nullopt;
  }
}

std::future<MatrixResult> Engine::admit_matrix_op(bool gemm, MatrixHandle a,
                                                  MatrixHandle b,
                                                  const SubmitOptions& opts) {
  auto ma = lookup(a);
  auto mb = lookup(b);
  if (gemm) {
    if (ma->num_cols != mb->num_rows) {
      throw InvalidInputError("serve: spgemm operands are dimension-incompatible");
    }
  } else if (ma->num_rows != mb->num_rows || ma->num_cols != mb->num_cols) {
    throw InvalidInputError("serve: spadd operands differ in shape");
  }
  try {
    breaker_.admit(a, modeled_now_ms());
  } catch (const CircuitOpenError&) {
    serve_metrics().breaker_fail_fast.add();
    throw;
  }
  auto req = std::make_unique<Request>();
  req->kind = gemm ? Request::Kind::kSpgemm : Request::Kind::kSpadd;
  req->handle_a = a;
  req->a = std::move(ma);
  req->b = std::move(mb);
  req->submitted = clock::now();
  req->salt = a ^ (admit_seq_.fetch_add(1, std::memory_order_relaxed) *
                   0x9E3779B97F4A7C15ull);
  req->open_span();
  auto timeout = opts.request_timeout.count() != 0 ? opts.request_timeout
                                                   : cfg_.default_timeout;
  if (timeout.count() > 0) req->expires = req->submitted + timeout;
  auto future = req->matrix_promise.get_future();
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    shed_low_priority_locked(opts);
    if (!admit_locked(lock, opts, /*blocking=*/true)) {
      serve_metrics().rejected_full.add();
      std::lock_guard<std::mutex> slock(stats_mutex_);
      ++rejected_full_;
      throw QueueFullError("serve: submission queue full (capacity " +
                           std::to_string(cfg_.queue_capacity) + ")");
    }
    queue_.push_back(std::move(req));
    serve_metrics().accepted.add();
    serve_metrics().peak_queue.update_max(static_cast<double>(queue_.size()));
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++accepted_;
    peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
  }
  queue_cv_.notify_one();
  return future;
}

std::future<MatrixResult> Engine::submit_spadd(MatrixHandle a, MatrixHandle b,
                                               const SubmitOptions& opts) {
  return admit_matrix_op(/*gemm=*/false, a, b, opts);
}

std::future<MatrixResult> Engine::submit_spgemm(MatrixHandle a, MatrixHandle b,
                                                const SubmitOptions& opts) {
  return admit_matrix_op(/*gemm=*/true, a, b, opts);
}

// ---------------------------------------------------------------------------
// Dispatch

void Engine::dispatcher_loop() {
  for (;;) {
    std::vector<std::unique_ptr<Request>> rejected;
    std::vector<std::unique_ptr<Request>> expired;
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      // Dispatch is gated on execution capacity: with every worker busy
      // (one in-flight batch each), pending requests stay in the bounded
      // queue — where full-queue rejection and per-request timeouts
      // apply — instead of piling into the pool's unbounded task deque.
      // Workers signal queue_cv_ as batches settle.
      queue_cv_.wait(lock, [&] {
        if (queue_.empty()) return stop_dispatcher_;
        if (reject_pending_) return true;
        return !paused_ && in_flight_batches_ < num_workers_;
      });
      if (reject_pending_) {
        for (auto& r : queue_) rejected.push_back(std::move(r));
        queue_.clear();
      } else if (!queue_.empty() && !paused_) {
        const auto now = clock::now();
        // Expired requests fail without running; pop them in arrival
        // order until a live one heads the queue.
        while (!queue_.empty() && queue_.front()->expired(now)) {
          expired.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
        if (!queue_.empty()) {
          batch = std::make_shared<Batch>();
          batch->reqs.push_back(std::move(queue_.front()));
          queue_.pop_front();
          Request& head = *batch->reqs.front();
          if (head.kind == Request::Kind::kSpmv && cfg_.batch_window > 1) {
            // Coalesce same-matrix SpMV requests from anywhere in the
            // queue (multi-tenant traffic interleaves them), up to the
            // window.  Relative order of everything left is preserved.
            for (auto it = queue_.begin();
                 it != queue_.end() &&
                 batch->reqs.size() <
                     static_cast<std::size_t>(cfg_.batch_window);) {
              Request& r = **it;
              if (r.kind == Request::Kind::kSpmv &&
                  r.handle_a == head.handle_a && !r.expired(now)) {
                batch->reqs.push_back(std::move(*it));
                it = queue_.erase(it);
              } else {
                ++it;
              }
            }
          }
          in_flight_ += batch->reqs.size();
          ++in_flight_batches_;
        }
      }
      if (queue_.empty()) idle_cv_.notify_all();
      if (stop_dispatcher_ && queue_.empty() && !batch && rejected.empty() &&
          expired.empty()) {
        break;
      }
    }
    space_cv_.notify_all();  // queue shrank (or is being torn down)

    // Counters are bumped BEFORE the promises settle: a client that
    // just observed its future must not race ahead of stats().
    const auto settle_shutdown = [&](std::vector<std::unique_ptr<Request>>& rs) {
      {
        std::lock_guard<std::mutex> slock(stats_mutex_);
        rejected_shutdown_ += static_cast<long long>(rs.size());
      }
      serve_metrics().rejected_shutdown.add(static_cast<long long>(rs.size()));
      for (auto& r : rs) {
        r->finish_span("shutdown");
        r->fail(std::make_exception_ptr(
            ShutdownError("serve: engine shut down before the request ran")));
      }
    };
    if (!rejected.empty()) settle_shutdown(rejected);
    if (!expired.empty()) {
      {
        std::lock_guard<std::mutex> slock(stats_mutex_);
        timed_out_ += static_cast<long long>(expired.size());
      }
      serve_metrics().timed_out.add(static_cast<long long>(expired.size()));
      for (auto& r : expired) {
        r->finish_span("timeout");
        r->fail(std::make_exception_ptr(RequestTimeoutError(
            "serve: request timed out after waiting in the queue")));
      }
    }
    if (batch) dispatch_batch(std::move(batch));
  }
}

void Engine::dispatch_batch(std::shared_ptr<Batch> batch) {
  const std::size_t n = batch->reqs.size();
  {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    if (n < batch_histogram_.size()) batch_histogram_[n] += 1;
    if (n >= 2) ++batches_;
    max_batch_ = std::max(max_batch_, static_cast<long long>(n));
  }
  if (n >= 2) serve_metrics().batches.add();
  // execute_batch may shrink batch->reqs (late-expiry re-check), so the
  // in-flight accounting uses the size captured at dispatch.  Freed
  // capacity wakes the dispatcher, which gates on in_flight_batches_.
  const auto finish = [this, n] {
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      in_flight_ -= n;
      --in_flight_batches_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
    queue_cv_.notify_one();
  };
  const bool posted = pool_.try_post([this, batch, finish] {
    execute_with_failover(*batch);
    finish();
  });
  if (!posted) {
    // Unreachable in normal operation (the pool is shut down only after
    // the dispatcher exits), but if it happens the requests are settled
    // with a typed error, not dropped.
    {
      std::lock_guard<std::mutex> slock(stats_mutex_);
      rejected_shutdown_ += static_cast<long long>(n);
    }
    serve_metrics().rejected_shutdown.add(static_cast<long long>(n));
    for (auto& r : batch->reqs) {
      r->finish_span("shutdown");
      r->fail(std::make_exception_ptr(
          ShutdownError("serve: worker pool rejected the dispatch")));
    }
    finish();
  }
}

// ---------------------------------------------------------------------------
// Execution

double Engine::prepare_retry(Request& req, int attempt) {
  // Runs inside a catch handler: `throw;` re-raises the fault that
  // brought us here once the budget is spent.
  if (attempt + 1 >= cfg_.retry.max_attempts) throw;
  if (req.expired(clock::now())) {
    // Deadline-aware retry: nobody is waiting for this answer anymore.
    throw RequestTimeoutError(
        "serve: request deadline expired before retry attempt " +
        std::to_string(attempt + 1));
  }
  serve_metrics().retries.add();
  {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++retries_;
  }
  return cfg_.retry.backoff_ms(attempt + 1, req.salt);
}

double Engine::prepare_batch_retry(Batch& batch, int attempt) {
  if (attempt + 1 >= cfg_.retry.max_attempts) throw;
  // Requests that expired during the failed attempt settle with a
  // timeout now; the survivors get the retry (the batch block is
  // reassembled from whoever is left).
  const auto now = clock::now();
  std::size_t kept = 0;
  for (auto& r : batch.reqs) {
    if (r->expired(now)) {
      fail_request(*r, std::make_exception_ptr(RequestTimeoutError(
                           "serve: request deadline expired before retry "
                           "attempt " +
                           std::to_string(attempt + 1))));
    } else {
      batch.reqs[kept++] = std::move(r);
    }
  }
  batch.reqs.resize(kept);
  if (batch.reqs.empty()) {
    throw RequestTimeoutError(
        "serve: every request of the batch expired before the retry");
  }
  serve_metrics().retries.add();
  {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++retries_;
  }
  return cfg_.retry.backoff_ms(attempt + 1, batch.reqs.front()->salt);
}

void Engine::fail_request(Request& r, const std::exception_ptr& e) {
  bool timeout = false;
  bool integrity = false;
  try {
    std::rethrow_exception(e);
  } catch (const RequestTimeoutError&) {
    timeout = true;
  } catch (const IntegrityError&) {
    integrity = true;
  } catch (...) {
  }
  if (timeout) {
    {
      std::lock_guard<std::mutex> slock(stats_mutex_);
      ++timed_out_;
    }
    serve_metrics().timed_out.add();
    r.finish_span("timeout");  // first status wins; fail()'s "error" won't
  } else {
    if (integrity) {
      // A terminal integrity failure (the retry budget is already spent
      // by the time a request fails with it) is a data-corruption signal
      // — capture the ring before the evidence scrolls away.
      telemetry::flight().note("fault", "integrity",
                               "handle " + std::to_string(r.handle_a));
      telemetry::flight().dump_bundle("integrity");
    }
    settle_metrics(r.handle_a, 0.0, false);
  }
  r.fail(e);
}

void Engine::note_execution_failure(MatrixHandle h,
                                    const std::exception_ptr& e) {
  // Timeouts say the queue is slow; device loss says the hardware died.
  // Neither is evidence against the matrix, so neither feeds the breaker.
  try {
    std::rethrow_exception(e);
  } catch (const RequestTimeoutError&) {
    return;
  } catch (const vgpu::DeviceLostError&) {
    return;
  } catch (...) {
  }
  if (breaker_.on_failure(h, modeled_now_ms())) {
    serve_metrics().breaker_opened.add();
  }
}

void Engine::note_success(MatrixHandle h) {
  breaker_.on_success(h);
  if (cfg_.degrade_recovery > 0 &&
      degraded_.load(std::memory_order_relaxed)) {
    if (degrade_successes_.fetch_add(1, std::memory_order_relaxed) + 1 >=
        cfg_.degrade_recovery) {
      bool expected = true;
      if (degraded_.compare_exchange_strong(expected, false)) {
        plan_cache_.set_capacity(cfg_.plan_cache_bytes);
        serve_metrics().degraded.set(0.0);
        telemetry::ScopedSpan span("serve.degraded_exit");
      }
    }
  }
}

void Engine::note_memory_pressure() {
  if (cfg_.degrade_recovery <= 0) return;
  // Any OOM resets the recovery streak; the FIRST one shrinks the plan
  // cache so resident plans stop competing with working sets, and flips
  // unbatched SpMV onto the plan-less path (execute_batch checks the
  // flag per dispatch).
  degrade_successes_.store(0, std::memory_order_relaxed);
  bool expected = false;
  if (degraded_.compare_exchange_strong(expected, true)) {
    telemetry::ScopedSpan span("serve.degraded_enter");
    plan_cache_.set_capacity(static_cast<std::size_t>(
        static_cast<double>(cfg_.plan_cache_bytes) * cfg_.degrade_cache_frac));
    serve_metrics().degraded_entered.add();
    serve_metrics().degraded.set(1.0);
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++degraded_entered_;
  }
}

void Engine::execute_with_failover(Batch& batch) {
  int failovers = 0;
  for (;;) {
    Lease lease = acquire_lease(batch);
    try {
      execute_batch(batch, lease);
    } catch (const vgpu::DeviceLostError& e) {
      // A leased device is gone.  Quarantine it and provision a fresh
      // one in its slot BEFORE releasing the lease: the slot is still
      // marked busy, so no other batch can lease the dead device in the
      // window.  The batch requeues — structurally nothing in it has
      // settled yet (losses fire from launches/reserves, which all
      // precede the first promise settle).
      std::size_t lost = static_cast<std::size_t>(lease.ordinals.front());
      if (const auto* se = dynamic_cast<const shard::ShardLostError*>(&e)) {
        // Sharded execution names the shard's slot — only that slot is
        // quarantined, the rest of the placement survives untouched.
        lost = static_cast<std::size_t>(se->device_ordinal());
      }
      handle_device_loss(lost);
      release_lease(lease);
      ++failovers;
      if (failovers > cfg_.max_failovers) {
        const auto error = std::current_exception();
        note_execution_failure(
            batch.reqs.empty() ? 0 : batch.reqs.front()->handle_a, error);
        for (auto& r : batch.reqs) fail_request(*r, error);
        return;
      }
      continue;  // retry on the repaired fleet
    }
    release_lease(lease);
    return;
  }
}

Engine::Lease Engine::acquire_lease(Batch& batch) {
  Lease lease;
  Request& head = *batch.reqs.front();
  const bool sharded_mode = cfg_.devices > 0;

  if (sharded_mode && head.kind == Request::Kind::kSpmv) {
    bool build_replica = false;
    std::vector<int> primary_ordinals;
    {
      std::lock_guard<std::mutex> lock(shard_mutex_);
      const auto it = shardings_.find(head.handle_a);
      if (it != shardings_.end() && it->second.primary) {
        Sharding& s = it->second;
        build_replica = note_sharded_request(head.handle_a, s);
        primary_ordinals = s.primary_ordinals;
        // Route across the two placements by salt parity: deterministic
        // per request, roughly half the traffic each.
        if (s.replica && (head.salt & 1u) != 0) {
          lease.sharded = s.replica;
          lease.ordinals = s.replica_ordinals;
          lease.replica = true;
        } else {
          lease.sharded = s.primary;
          lease.ordinals = s.primary_ordinals;
        }
      }
    }
    if (build_replica) {
      // Built OUTSIDE shard_mutex_: lookup takes registry_mutex_, and
      // the lock order everywhere is registry before shard.  Losing an
      // install race is harmless — the first install wins.
      const auto a = lookup(head.handle_a);
      const int width = static_cast<int>(primary_ordinals.size());
      const int fleet = static_cast<int>(fleet_.size());
      std::vector<int> ordinals(static_cast<std::size_t>(width));
      for (int k = 0; k < width; ++k) {
        ordinals[static_cast<std::size_t>(k)] =
            (primary_ordinals.front() + width + k) % fleet;
      }
      const auto weights = placement_weights(ordinals);
      shard::ShardOptions opt;
      opt.split_2d_nnz = cfg_.shard_2d_nnz;
      auto replica = std::make_shared<const shard::ShardedMatrix>(
          *a, ordinals, weights, opt);
      std::lock_guard<std::mutex> lock(shard_mutex_);
      const auto it = shardings_.find(head.handle_a);
      if (it != shardings_.end() && it->second.primary && !it->second.replica) {
        it->second.replica = std::move(replica);
        it->second.replica_ordinals = std::move(ordinals);
      }
    }
  } else if (sharded_mode && head.kind != Request::Kind::kSpmv) {
    // Matrix ops span the whole fleet: shard::spadd/spgemm partition the
    // output rows across every slot by placement weight.
    lease.ordinals.resize(fleet_.size());
    for (std::size_t i = 0; i < fleet_.size(); ++i) {
      lease.ordinals[i] = static_cast<int>(i);
    }
    lease.weights = placement_weights(lease.ordinals);
  }

  const std::size_t n_req = batch.reqs.size();
  {
    std::unique_lock<std::mutex> lock(devices_mutex_);
    if (lease.ordinals.empty()) {
      // Unsharded work (legacy mode, or a matrix below the shard
      // threshold): any one free slot.
      devices_cv_.wait(lock, [&] {
        for (const SlotState& slot : slots_) {
          if (!slot.busy) return true;
        }
        return false;
      });
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].busy) {
          lease.ordinals.push_back(static_cast<int>(i));
          break;
        }
      }
    } else {
      // All-or-nothing claim: wait until EVERY required ordinal is free,
      // then take them together.  No partial holds means overlapping
      // ordinal sets cannot deadlock against each other.
      devices_cv_.wait(lock, [&] {
        for (const int o : lease.ordinals) {
          if (slots_[static_cast<std::size_t>(o)].busy) return false;
        }
        return true;
      });
    }
    for (const int o : lease.ordinals) {
      SlotState& slot = slots_[static_cast<std::size_t>(o)];
      slot.busy = true;
      slot.in_flight = n_req;
      ++slot.dispatched;
    }
    lease.devices.assign(fleet_.size(), nullptr);
    for (const int o : lease.ordinals) {
      lease.devices[static_cast<std::size_t>(o)] =
          &fleet_.device(static_cast<std::size_t>(o));
    }
  }
  for (const int o : lease.ordinals) {
    device_gauge(static_cast<std::size_t>(o), "in_flight")
        .set(static_cast<double>(n_req));
    device_counter(static_cast<std::size_t>(o), "dispatched").add();
  }
  return lease;
}

void Engine::release_lease(const Lease& lease) {
  {
    std::lock_guard<std::mutex> lock(devices_mutex_);
    for (const int o : lease.ordinals) {
      SlotState& slot = slots_[static_cast<std::size_t>(o)];
      slot.busy = false;
      slot.in_flight = 0;
    }
  }
  devices_cv_.notify_all();
  for (const int o : lease.ordinals) {
    device_gauge(static_cast<std::size_t>(o), "in_flight").set(0.0);
  }
}

void Engine::handle_device_loss(std::size_t device_index) {
  telemetry::ScopedSpan span("serve.failover");
  {
    std::lock_guard<std::mutex> lock(devices_mutex_);
    // DeviceSet::replace provisions the fresh device with the SLOT'S OWN
    // properties, so shard layouts keyed on slot ordinals stay valid —
    // device loss re-places nothing.  Fresh hardware, fresh luck: the
    // replacement is NOT re-armed with the chaos schedule (re-arming
    // would lose it at the same ordinal forever — a livelock, not a
    // model of anything).  MPS_FAULT_* env knobs still apply through the
    // Device constructor, as for the original fleet.
    quarantined_.push_back(fleet_.replace(device_index));
    ++slots_[device_index].lost;
  }
  devices_cv_.notify_all();
  device_counter(device_index, "lost").add();
  telemetry::flight().note("fault", "device-lost",
                           "slot " + std::to_string(device_index));
  telemetry::flight().dump_bundle("device-lost");
  // Cached plans may hold allocations accounted against the lost device;
  // drop them all and let the survivors rebuild lazily (re-residenting
  // registered matrices costs one plan build per matrix, amortized).
  plan_cache_.clear();
  serve_metrics().failovers.add();
  {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++failovers_;
  }
}

void Engine::settle_metrics(MatrixHandle h, double latency_ms, bool ok) {
  if (ok) {
    serve_metrics().completed.add();
    serve_metrics().latency_ms.observe(latency_ms);
  } else {
    serve_metrics().failed.add();
  }
  if (slo_) {
    TenantSlo t;
    const bool entered_alert = slo_->observe(h, latency_ms, ok, &t);
    slo_gauge(h, "burn_short").set(t.burn_short);
    slo_gauge(h, "burn_long").set(t.burn_long);
    slo_gauge(h, "budget_remaining").set(t.budget_remaining);
    slo_gauge(h, "alerting").set(t.alerting ? 1.0 : 0.0);
    if (entered_alert) {
      serve_metrics().slo_alerts.add();
      telemetry::flight().note(
          "slo", "alert",
          "tenant " + std::to_string(h) + " burn_short=" +
              std::to_string(t.burn_short) + " burn_long=" +
              std::to_string(t.burn_long));
    }
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (ok) {
    ++completed_;
    // Bounded reservoir: quantiles cover the most recent kLatencyWindow
    // completions.  Unbounded history would be a slow leak (one double
    // per request forever) and an ever-costlier sort in stats().
    if (latencies_ms_.size() < kLatencyWindow) {
      latencies_ms_.push_back(latency_ms);
    } else {
      latencies_ms_[latency_next_] = latency_ms;
      latency_next_ = (latency_next_ + 1) % kLatencyWindow;
    }
  } else {
    ++failed_;
  }
}

void Engine::execute_batch(Batch& batch, Lease& lease) {
  // Deadlines are re-checked at the last moment before execution: a
  // request can expire between dispatch and here, and the contract is
  // that an expired request never runs.
  {
    const auto now = clock::now();
    std::size_t kept = 0;
    for (auto& r : batch.reqs) {
      if (r->expired(now)) {
        fail_request(*r, std::make_exception_ptr(RequestTimeoutError(
                             "serve: request timed out before execution "
                             "began")));
      } else {
        batch.reqs[kept++] = std::move(r);
      }
    }
    batch.reqs.resize(kept);
  }
  if (batch.reqs.empty()) return;

  if (batch.reqs.front()->kind != Request::Kind::kSpmv) {
    execute_matrix_op(*batch.reqs.front(), lease);
    return;
  }
  // Unsharded dispatch runs on the lease's single slot; sharded dispatch
  // (lease.sharded != null) fans out in src/shard/exec.cpp.
  vgpu::Device& device =
      *lease.devices[static_cast<std::size_t>(lease.ordinals.front())];
  // Run the batch under the head request's span: nested host-phase spans
  // and every kernel this worker launches inherit its trace id (the
  // correlation the Perfetto export surfaces).  The context is copied up
  // front — retries may prune the head request itself.
  telemetry::ContextScope trace_scope(batch.reqs.front()->span_ctx);
  const MatrixHandle handle = batch.reqs.front()->handle_a;
  // Roofline attribution: kernels launched below are billed to this
  // tenant/phase (shard exec refines shard + device).  Guarded so the
  // profiler-off path stays one relaxed atomic load.
  std::optional<telemetry::ProfAttrScope> prof_scope;
  if (telemetry::profiler().enabled()) {
    telemetry::ProfAttr attr;
    attr.tenant = handle;
    attr.phase = "serve.spmv";
    prof_scope.emplace(attr);
  }
  const std::shared_ptr<const sparse::CsrD> a_ref = batch.reqs.front()->a;
  const sparse::CsrD& a = *a_ref;
  const auto rows = static_cast<std::size_t>(a.num_rows);
  const auto cols = static_cast<std::size_t>(a.num_cols);

  std::size_t settled = 0;  ///< requests already counted as completed
  try {
    if (batch.reqs.size() == 1) {
      // Unbatched path: plan-cache hit amortizes the partition (and,
      // with autotuning on, the trial protocol).  Tuned execution is
      // bitwise-identical to the merge path — every candidate shares
      // the canonical accumulation order — so flipping MPS_AUTOTUNE can
      // change modeled cost only, never a result.  In degraded mode the
      // cache is bypassed entirely: one-shot spmv builds a transient
      // plan and frees it, trading amortization for a minimal resident
      // footprint (results stay bitwise-identical by construction).
      Request& head = *batch.reqs.front();
      std::vector<double> y(rows);
      double modeled = 0.0;
      double backoff_ms = 0.0;
      bool hit = false;
      telemetry::ScopedSpan exec_span("serve.execute");
      for (int attempt = 0;; ++attempt) {
        try {
          if (lease.sharded) {
            // Sharded dispatch: per-shard plans under shard_plan_key
            // share the one LRU budget; the request counts as a cache
            // hit only when EVERY shard hit.  Results are
            // bitwise-identical to the single-device paths below
            // (docs/sharding.md; tests/shard_test.cpp).
            const shard::ShardedMatrix& sm = *lease.sharded;
            const std::size_t width = sm.shards().size();
            if (degraded_.load(std::memory_order_relaxed)) {
              modeled = shard::spmv(sm, lease.devices, head.x, y).modeled_ms;
              hit = false;
            } else if (cfg_.autotune > 0) {
              std::vector<std::shared_ptr<const autotune::TunedPlan>> tuned(
                  width);
              bool all_hit = true;
              for (std::size_t i = 0; i < width; ++i) {
                const shard::Shard& sh = sm.shards()[i];
                if (sh.row_end <= sh.row_begin || sh.local.nnz() == 0) continue;
                bool shard_hit = false;
                try {
                  tuned[i] = plan_cache_.get_or_build_tuned(
                      *lease.devices[static_cast<std::size_t>(sh.device)],
                      sh.local, shard_plan_key(handle, i, lease.replica),
                      &shard_hit);
                } catch (const vgpu::DeviceLostError& e) {
                  // Attribute plan-build losses to the shard's slot so
                  // failover quarantines the device that actually died.
                  throw shard::ShardLostError(e.what(), sh.device);
                }
                all_hit = all_hit && shard_hit;
              }
              hit = all_hit;
              modeled =
                  shard::spmv_tuned(sm, lease.devices, tuned, head.x, y)
                      .modeled_ms;
            } else {
              std::vector<std::shared_ptr<const core::merge::SpmvPlan>> plans(
                  width);
              bool all_hit = true;
              for (std::size_t i = 0; i < width; ++i) {
                const shard::Shard& sh = sm.shards()[i];
                if (sh.row_end <= sh.row_begin || sh.local.nnz() == 0) continue;
                bool shard_hit = false;
                try {
                  plans[i] = plan_cache_.get_or_build(
                      *lease.devices[static_cast<std::size_t>(sh.device)],
                      sh.local, shard_plan_key(handle, i, lease.replica),
                      &shard_hit);
                } catch (const vgpu::DeviceLostError& e) {
                  throw shard::ShardLostError(e.what(), sh.device);
                }
                all_hit = all_hit && shard_hit;
              }
              hit = all_hit;
              modeled =
                  shard::spmv_execute(sm, lease.devices, plans, head.x, y)
                      .modeled_ms;
            }
          } else if (degraded_.load(std::memory_order_relaxed)) {
            modeled = core::merge::spmv(device, a, head.x, y).modeled_ms();
            hit = false;
          } else if (cfg_.autotune > 0) {
            auto tuned =
                plan_cache_.get_or_build_tuned(device, a, handle, &hit);
            modeled = tuned->execute(device, a, head.x, y).modeled_ms();
          } else {
            auto plan = plan_cache_.get_or_build(device, a, handle, &hit);
            modeled = core::merge::spmv_execute(device, a, head.x, y, *plan)
                          .modeled_ms();
          }
          break;
        } catch (const IntegrityError&) {
          // Rebuild from clean state (every placement's keys in the
          // sharded case — which shard tripped is not recorded).
          if (lease.sharded) {
            invalidate_shard_plans(handle);
          } else {
            plan_cache_.invalidate(handle);
          }
          backoff_ms += prepare_retry(head, attempt);
        } catch (const PlanMismatchError&) {
          // A stale tuned entry (e.g. values re-registered between
          // lookup and execute) — drop it and re-tune.
          if (lease.sharded) {
            invalidate_shard_plans(handle);
          } else {
            plan_cache_.invalidate_tuned(handle);
          }
          backoff_ms += prepare_retry(head, attempt);
        } catch (const vgpu::DeviceOomError&) {
          note_memory_pressure();
          backoff_ms += prepare_retry(head, attempt);
        }
      }
      exec_span.end();
      charge_modeled(modeled + backoff_ms);
      SpmvResult result;
      result.y = std::move(y);
      // Backoff is charged in modeled time — the client's bill includes
      // the waiting the policy imposed, not just the kernels.
      result.modeled_ms = modeled + backoff_ms;
      result.batch_size = 1;
      result.plan_cache_hit = hit;
      note_success(handle);
      settle_metrics(
          handle,
          std::chrono::duration<double, std::milli>(clock::now() - head.submitted)
              .count(),
          true);
      head.finish_span("ok");
      head.spmv_promise.set_value(std::move(result));
      return;
    }

    // Batched path: interleave the n request vectors into a row-major
    // X (cols x n) and run ONE spmm.  Column j of Y is bitwise-identical
    // to spmv of request j: spmm shares spmv's tile geometry and
    // accumulation order (tests/serve_test.cpp asserts it).  The block
    // is (re)assembled per attempt because a retry may have pruned
    // expired requests from the batch.
    std::vector<double> y_block;
    double modeled = 0.0;
    double backoff_ms = 0.0;
    for (int attempt = 0;; ++attempt) {
      const std::size_t n = batch.reqs.size();
      telemetry::ScopedSpan assemble_span("serve.batch_assemble");
      std::vector<double> x_block(cols * n);
      for (std::size_t j = 0; j < n; ++j) {
        const std::vector<double>& x = batch.reqs[j]->x;
        for (std::size_t c = 0; c < cols; ++c) x_block[c * n + j] = x[c];
      }
      assemble_span.end();
      y_block.assign(rows * n, 0.0);
      telemetry::ScopedSpan exec_span("serve.execute");
      try {
        if (lease.sharded) {
          // Sharded spmm: same column-j == spmv-of-request-j bitwise
          // contract — each shard runs the spmm kernel on its local rows.
          modeled = shard::spmm(*lease.sharded, lease.devices, x_block,
                                static_cast<index_t>(n), y_block)
                        .modeled_ms;
        } else {
          modeled = core::merge::spmm(device, a, x_block,
                                      static_cast<index_t>(n), y_block)
                        .modeled_ms;
        }
        exec_span.end();
        break;
      } catch (const vgpu::DeviceOomError&) {
        exec_span.end("oom");
        note_memory_pressure();
        backoff_ms += prepare_batch_retry(batch, attempt);
      } catch (const IntegrityError&) {
        exec_span.end("integrity");
        backoff_ms += prepare_batch_retry(batch, attempt);
      }
    }
    telemetry::ScopedSpan scatter_span("serve.batch_scatter");
    const std::size_t n = batch.reqs.size();
    charge_modeled(modeled + backoff_ms);
    note_success(handle);
    const auto now = clock::now();
    for (std::size_t j = 0; j < n; ++j) {
      Request& r = *batch.reqs[j];
      SpmvResult result;
      result.y.resize(rows);
      for (std::size_t i = 0; i < rows; ++i) result.y[i] = y_block[i * n + j];
      result.modeled_ms = (modeled + backoff_ms) / static_cast<double>(n);
      result.batch_size = static_cast<int>(n);
      settle_metrics(
          handle,
          std::chrono::duration<double, std::milli>(now - r.submitted).count(),
          true);
      r.finish_span("ok");
      r.spmv_promise.set_value(std::move(result));
      ++settled;
    }
  } catch (const vgpu::DeviceLostError&) {
    // Failover territory: nothing in the batch has settled (losses fire
    // from launches/reserves, all of which precede the first settle), so
    // the whole batch can requeue on a surviving worker.
    throw;
  } catch (...) {
    // A failure mid-scatter (e.g. allocation during result copy-out)
    // must only fail the requests not yet settled: the earlier ones
    // already delivered values and were counted as completed.
    auto error = std::current_exception();
    note_execution_failure(handle, error);
    for (std::size_t j = settled; j < batch.reqs.size(); ++j) {
      fail_request(*batch.reqs[j], error);
    }
  }
}

void Engine::execute_matrix_op(Request& req, Lease& lease) {
  telemetry::ContextScope trace_scope(req.span_ctx);
  std::optional<telemetry::ProfAttrScope> prof_scope;
  if (telemetry::profiler().enabled()) {
    telemetry::ProfAttr attr;
    attr.tenant = req.handle_a;
    attr.phase =
        req.kind == Request::Kind::kSpadd ? "serve.spadd" : "serve.spgemm";
    prof_scope.emplace(attr);
  }
  try {
    MatrixResult result;
    double backoff_ms = 0.0;
    telemetry::ScopedSpan exec_span("serve.execute");
    for (int attempt = 0;; ++attempt) {
      try {
        result.c = sparse::CsrD{};  // a failed attempt may leave partial rows
        if (lease.ordinals.size() > 1) {
          // Sharded mode: the op's output rows are partitioned across the
          // whole fleet by placement weight (src/shard/exec.cpp), results
          // bitwise-identical to the single-device kernels below.
          shard::ExecStats st;
          if (req.kind == Request::Kind::kSpadd) {
            st = shard::spadd(*req.a, *req.b, lease.devices, lease.ordinals,
                              lease.weights, result.c);
          } else {
            st = shard::spgemm(*req.a, *req.b, lease.devices, lease.ordinals,
                               lease.weights, result.c);
          }
          result.modeled_ms = st.modeled_ms;
        } else {
          vgpu::Device& device =
              *lease.devices[static_cast<std::size_t>(lease.ordinals.front())];
          if (req.kind == Request::Kind::kSpadd) {
            result.modeled_ms =
                core::merge::spadd_csr(device, *req.a, *req.b, result.c)
                    .modeled_ms;
          } else {
            result.modeled_ms =
                core::merge::spgemm(device, *req.a, *req.b, result.c)
                    .modeled_ms();
          }
        }
        break;
      } catch (const vgpu::DeviceOomError&) {
        note_memory_pressure();
        backoff_ms += prepare_retry(req, attempt);
      } catch (const IntegrityError&) {
        backoff_ms += prepare_retry(req, attempt);
      }
    }
    exec_span.end();
    result.modeled_ms += backoff_ms;
    charge_modeled(result.modeled_ms);
    note_success(req.handle_a);
    settle_metrics(
        req.handle_a,
        std::chrono::duration<double, std::milli>(clock::now() - req.submitted)
            .count(),
        true);
    req.finish_span("ok");
    req.matrix_promise.set_value(std::move(result));
  } catch (const vgpu::DeviceLostError&) {
    throw;  // nothing settled yet — safe to fail the device over and requeue
  } catch (...) {
    auto error = std::current_exception();
    note_execution_failure(req.handle_a, error);
    fail_request(req, error);
  }
}

// ---------------------------------------------------------------------------
// Stats

EngineStats Engine::stats() const {
  EngineStats s;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    s.queue_depth = queue_.size();
  }
  s.queue_capacity = cfg_.queue_capacity;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    s.peak_queue_depth = peak_queue_depth_;
    s.accepted = accepted_;
    s.rejected_full = rejected_full_;
    s.timed_out = timed_out_;
    s.rejected_shutdown = rejected_shutdown_;
    s.completed = completed_;
    s.failed = failed_;
    s.retries = retries_;
    s.batches = batches_;
    s.max_batch = max_batch_;
    s.batch_histogram = batch_histogram_;
    s.latency_ms = util::summarize(latencies_ms_);
    s.latency_p50_ms = util::percentile(latencies_ms_, 50.0);
    s.latency_p99_ms = util::percentile(latencies_ms_, 99.0);
    s.shed = shed_;
    s.failovers = failovers_;
    s.degraded_entered = degraded_entered_;
  }
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.breaker = breaker_.stats();
  s.plan_cache = plan_cache_.stats();
  {
    std::lock_guard<std::mutex> lock(devices_mutex_);
    s.devices.resize(fleet_.size());
    for (std::size_t i = 0; i < fleet_.size(); ++i) {
      EngineStats::DeviceStats& d = s.devices[i];
      d.profile = fleet_.profile(i);
      d.weight = fleet_.weight(i);
      d.busy = slots_[i].busy;
      d.in_flight = slots_[i].in_flight;
      d.dispatched = slots_[i].dispatched;
      d.lost = slots_[i].lost;
    }
  }
  {
    std::lock_guard<std::mutex> lock(shard_mutex_);
    for (const auto& entry : shardings_) {
      if (!entry.second.primary) continue;
      ++s.sharded_matrices;
      if (entry.second.replica) ++s.replicated_matrices;
      const auto count = [&s](const shard::ShardedMatrix& sm) {
        for (const shard::Shard& b : sm.shards()) {
          if (b.row_end > b.row_begin) {
            ++s.devices[static_cast<std::size_t>(b.device)].shards_hosted;
          }
        }
      };
      count(*entry.second.primary);
      if (entry.second.replica) count(*entry.second.replica);
    }
  }
  if (store_) {
    const auto d = store_->stats();
    s.durability.enabled = true;
    s.durability.wal_appends = d.wal_appends;
    s.durability.wal_bytes = d.wal_bytes;
    s.durability.snapshots = d.snapshots;
    s.durability.recovery = d.recovery;
  }
  if (slo_) {
    const SloConfig& c = slo_->config();
    s.slo.enabled = true;
    s.slo.latency_ms = c.latency_ms;
    s.slo.objective = c.objective;
    s.slo.burn_alert = c.burn_alert;
    s.slo.short_window = c.short_window;
    s.slo.long_window = c.long_window;
    s.slo.tenants = slo_->report();
    for (const TenantSlo& t : s.slo.tenants) {
      if (t.alerting) ++s.slo.alerting_now;
    }
  }
  return s;
}

PlanExplain Engine::explain(MatrixHandle h) const {
  PlanExplain ex;
  ex.handle = h;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    ex.registered = registry_.count(h) != 0;
  }
  // Unsharded entries first: peek never touches LRU order or counters,
  // so explain() can run from ops tooling without perturbing the cache.
  if (auto plan = plan_cache_.peek(h)) {
    ex.plan_resident = true;
    ex.plan_bytes = plan->bytes();
  }
  if (auto tuned = plan_cache_.peek_tuned(h)) {
    ex.tuned_resident = true;
    ex.choice = tuned->choice().name;
    ex.tune_ms = tuned->tune_ms();
    ex.steady_ms = tuned->steady_ms();
    ex.plan_bytes = tuned->bytes();
    ex.features = tuned->features();
    ex.trials = tuned->trials();
  }
  {
    std::lock_guard<std::mutex> lock(shard_mutex_);
    const auto it = shardings_.find(h);
    if (it != shardings_.end() && it->second.primary) {
      ex.sharded = true;
      ex.replicated = it->second.replica != nullptr;
      const auto& shards = it->second.primary->shards();
      ex.shards = static_cast<int>(shards.size());
      for (const shard::Shard& sh : shards) ex.shard_devices.push_back(sh.device);
    }
  }
  if (ex.sharded) {
    for (int i = 0; i < ex.shards; ++i) {
      const std::uint64_t key = shard_plan_key(h, static_cast<std::size_t>(i),
                                               /*replica=*/false);
      if (auto tuned = plan_cache_.peek_tuned(key)) {
        ex.shard_plans.push_back(std::string("tuned:") + tuned->choice().name);
        // Surface the first resident shard's decision record when the
        // unsharded keys are cold (sharded handles never populate them).
        if (!ex.tuned_resident) {
          ex.tuned_resident = true;
          ex.choice = tuned->choice().name;
          ex.tune_ms = tuned->tune_ms();
          ex.steady_ms = tuned->steady_ms();
          ex.features = tuned->features();
          ex.trials = tuned->trials();
        }
      } else if (plan_cache_.peek(key)) {
        ex.shard_plans.push_back("merge");
      } else {
        ex.shard_plans.push_back("cold");
      }
    }
  }
  return ex;
}

void Engine::write_bundle_state(std::ostream& out) const {
  // Deliberately limited to locks a crashing thread cannot hold at a
  // durable-crash point (registry_mutex_ and shard_mutex_ are both held
  // across WAL appends / snapshot captures — try_lock on a mutex the
  // calling thread owns is undefined, so they are never touched here).
  out << "{\"config\":{\"workers\":" << num_workers_
      << ",\"devices\":" << fleet_.size()
      << ",\"queue_capacity\":" << cfg_.queue_capacity
      << ",\"batch_window\":" << cfg_.batch_window
      << ",\"autotune\":" << cfg_.autotune
      << ",\"slo\":" << (slo_ ? 1 : 0)
      << ",\"durable\":" << (cfg_.durable_enabled > 0 ? 1 : 0) << "}";
  out << ",\"degraded\":" << (degraded_.load(std::memory_order_relaxed) ? 1 : 0);
  {
    std::unique_lock<std::mutex> lock(queue_mutex_, std::try_to_lock);
    if (lock.owns_lock()) {
      out << ",\"queue_depth\":" << queue_.size()
          << ",\"in_flight\":" << in_flight_;
    } else {
      out << ",\"queue\":\"unavailable\"";
    }
  }
  {
    std::unique_lock<std::mutex> lock(stats_mutex_, std::try_to_lock);
    if (lock.owns_lock()) {
      out << ",\"accepted\":" << accepted_ << ",\"completed\":" << completed_
          << ",\"failed\":" << failed_ << ",\"timed_out\":" << timed_out_
          << ",\"retries\":" << retries_ << ",\"failovers\":" << failovers_;
    } else {
      out << ",\"counters\":\"unavailable\"";
    }
  }
  {
    std::unique_lock<std::mutex> lock(devices_mutex_, std::try_to_lock);
    if (lock.owns_lock()) {
      out << ",\"slots\":[";
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (i) out << ",";
        out << "{\"ordinal\":" << i << ",\"profile\":\"" << fleet_.profile(i)
            << "\",\"busy\":" << (slots_[i].busy ? 1 : 0)
            << ",\"dispatched\":" << slots_[i].dispatched
            << ",\"lost\":" << slots_[i].lost << "}";
      }
      out << "]";
    } else {
      out << ",\"slots\":\"unavailable\"";
    }
  }
  {
    const PlanCache::Stats pc = plan_cache_.stats();
    out << ",\"plan_cache\":{\"entries\":" << pc.entries
        << ",\"bytes\":" << pc.bytes_in_use << ",\"hits\":" << pc.hits
        << ",\"misses\":" << pc.misses << ",\"evictions\":" << pc.evictions
        << "}";
  }
  if (slo_) {
    out << ",\"slo\":[";
    const auto tenants = slo_->report();
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      const TenantSlo& t = tenants[i];
      if (i) out << ",";
      out << "{\"tenant\":" << t.tenant << ",\"total\":" << t.total
          << ",\"bad\":" << t.bad << ",\"burn_short\":" << t.burn_short
          << ",\"burn_long\":" << t.burn_long
          << ",\"alerting\":" << (t.alerting ? 1 : 0)
          << ",\"alerts\":" << t.alerts << "}";
    }
    out << "]";
  }
  out << "}";
}

void Engine::write_trace(std::ostream& out) const {
  std::vector<vgpu::TraceTrack> tracks;
  std::lock_guard<std::mutex> lock(devices_mutex_);
  tracks.reserve(fleet_.size() + quarantined_.size());
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    tracks.push_back(vgpu::TraceTrack{"vgpu worker " + std::to_string(i),
                                      &fleet_.device(i)});
  }
  // Lost devices keep their kernel history: the timeline shows work up
  // to the loss point, then the failover replacement takes over the
  // worker track above.
  for (std::size_t i = 0; i < quarantined_.size(); ++i) {
    tracks.push_back(vgpu::TraceTrack{"vgpu lost " + std::to_string(i),
                                      quarantined_[i].get()});
  }
  vgpu::write_perfetto_trace(out, tracks);
}

}  // namespace mps::serve
