#pragma once
// Capacity-bounded LRU cache of SpmvPlans keyed by matrix pattern
// fingerprint (docs/serving.md).
//
// The serving engine amortizes merge-path partitioning across
// *independent* requests the same way SpmvPlan amortizes it across the
// iterations of one solver (the MERBIT setting, PAPERS.md): the first
// SpMV against a registered matrix builds the plan, every later request
// — from any client, on any worker — reuses it.  Entries charge their
// real heap footprint (SpmvPlan::bytes()) against a byte capacity;
// insertion evicts least-recently-used entries until the new plan fits.
//
// Concurrency: lookups hand out shared_ptr<const SpmvPlan>, so an
// evicted plan stays alive until the last in-flight execute drops it
// (spmv_execute only reads plan state — concurrent executes of one plan
// are safe, tests/serve_test.cpp proves bitwise identity under N
// threads).  get_or_build serializes on the cache mutex, which doubles
// as single-flight control: concurrent misses on one key build the plan
// once, not N times.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "autotune/autotune.hpp"
#include "core/spmv.hpp"
#include "sparse/csr.hpp"
#include "vgpu/device.hpp"

namespace mps::serve {

/// Cache key for one shard of a sharded matrix (docs/sharding.md): the
/// handle mixed with the shard index and the placement (primary vs hot
/// replica) through a splitmix64-style finalizer.  Distinct from every
/// unsharded handle key with overwhelming probability, so per-shard
/// merge plans and tuned plans share the engine's one LRU budget with
/// whole-matrix entries.
std::uint64_t shard_plan_key(std::uint64_t handle, std::size_t shard,
                             bool replica);

// The cache holds two entry kinds in ONE LRU under one byte budget:
// merge SpmvPlans (pattern-only, value-free) and autotune TunedPlans
// (winning candidate + its resident storage, charged by
// TunedPlan::bytes()).  Tuned entries live under a tagged key so the
// two kinds of one matrix never collide; eviction pressure is shared —
// a large tuned entry can displace plain plans and vice versa.
class PlanCache {
 public:
  /// `capacity_bytes` bounds the summed SpmvPlan::bytes() of resident
  /// entries.  A single plan larger than the whole capacity is built but
  /// not cached (counted as an oversize miss).
  explicit PlanCache(std::size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// The plan for `key`, building it from `a` on `device` on a miss.
  /// The key must never alias two different row structures; finer keys
  /// are sound (plans depend only on row structure).  The engine uses
  /// its full-structure MatrixHandle fingerprint, which refines the
  /// row-structure partition.  `was_hit` (optional) reports whether this
  /// call was served from cache.
  std::shared_ptr<const core::merge::SpmvPlan> get_or_build(
      vgpu::Device& device, const sparse::CsrD& a, std::uint64_t key,
      bool* was_hit = nullptr);

  /// The tuned plan for `key`, running the autotune trial protocol on a
  /// miss (docs/autotuning.md).  Trial cost is paid at build time only
  /// — the cached entry's executes report steady-state cost.
  std::shared_ptr<const autotune::TunedPlan> get_or_build_tuned(
      vgpu::Device& device, const sparse::CsrD& a, std::uint64_t key,
      bool* was_hit = nullptr);

  /// Read-only probes for explainability (Engine::explain): the resident
  /// entry for `key`, or null.  Never builds, never touches LRU order,
  /// never bumps hit/miss counters — explain() must not perturb what it
  /// observes.
  std::shared_ptr<const core::merge::SpmvPlan> peek(std::uint64_t key) const;
  std::shared_ptr<const autotune::TunedPlan> peek_tuned(
      std::uint64_t key) const;

  /// Drop both entry kinds for `key` if resident (the engine invalidates
  /// a plan whose integrity checksum failed before rebuilding it).
  void invalidate(std::uint64_t key);

  /// Drop only the tuned entry for `key`.  register_matrix calls this on
  /// every (re-)registration: tuned storage may bind the matrix's value
  /// buffer, which re-registration replaces.
  void invalidate_tuned(std::uint64_t key);

  /// Drop every entry (shutdown path; in-flight executes keep their
  /// shared_ptrs alive until they finish).
  void clear();

  /// Retarget the byte budget, evicting least-recently-used entries
  /// until resident bytes fit.  The engine's degraded mode shrinks the
  /// budget under memory pressure and restores it on recovery.
  void set_capacity(std::size_t capacity_bytes);

  /// Metadata of every resident entry — (untagged key, tuned?) pairs in
  /// LRU order, most recent first.  The durability snapshot persists
  /// these so MPS_DURABLE_WARM recovery can rebuild the warm set eagerly
  /// (plans are deterministic rebuilds; only *which* entries were warm
  /// is worth writing to disk).
  std::vector<std::pair<std::uint64_t, bool>> warm_entries() const;

  struct Stats {
    long long hits = 0;
    long long misses = 0;      ///< builds, including oversize ones
    long long evictions = 0;   ///< entries displaced by capacity pressure
    long long oversize = 0;    ///< plans too large to cache at all
    std::size_t entries = 0;
    std::size_t bytes_in_use = 0;
    std::size_t capacity_bytes = 0;
  };
  Stats stats() const;

 private:
  /// Tuned entries are indexed under key ^ kTunedKeyTag so one matrix
  /// can hold both kinds without collision.
  static constexpr std::uint64_t kTunedKeyTag = 0x9e3779b97f4a7c15ull;

  struct Entry {
    std::uint64_t key = 0;  ///< tagged key, as indexed
    std::shared_ptr<const core::merge::SpmvPlan> plan;
    std::shared_ptr<const autotune::TunedPlan> tuned;
    std::size_t bytes = 0;
  };

  void erase_locked(std::uint64_t tagged_key);

  // Doubly-linked LRU list, most-recent at the front; the map points at
  // list nodes.  All state guarded by mutex_.
  mutable std::mutex mutex_;
  std::size_t capacity_bytes_;
  std::size_t bytes_in_use_ = 0;
  std::list<Entry> lru_;
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  long long hits_ = 0;
  long long misses_ = 0;
  long long evictions_ = 0;
  long long oversize_ = 0;
};

}  // namespace mps::serve
