#include "serve/slo.hpp"

#include <algorithm>

#include "util/common.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace mps::serve {

SloConfig SloConfig::from_env() {
  SloConfig cfg;
  cfg.latency_ms = util::env_double_checked("MPS_SLO_LATENCY_MS", 50.0);
  cfg.objective = util::env_double_checked("MPS_SLO_OBJECTIVE", 0.999);
  if (cfg.objective <= 0.0 || cfg.objective >= 1.0) {
    throw InvalidInputError("MPS_SLO_OBJECTIVE: must be in (0, 1), got " +
                            std::to_string(cfg.objective));
  }
  cfg.short_window = static_cast<int>(
      util::env_int_checked("MPS_SLO_SHORT_WINDOW", 256, 1, 1 << 20));
  cfg.long_window = static_cast<int>(
      util::env_int_checked("MPS_SLO_LONG_WINDOW", 4096, 1, 1 << 24));
  if (cfg.long_window < cfg.short_window) {
    throw InvalidInputError(
        "MPS_SLO_LONG_WINDOW: must be >= MPS_SLO_SHORT_WINDOW (" +
        std::to_string(cfg.long_window) + " < " +
        std::to_string(cfg.short_window) + ")");
  }
  cfg.burn_alert = util::env_double_checked("MPS_SLO_BURN_ALERT", 2.0);
  return cfg;
}

SloTracker::SloTracker(SloConfig cfg) : cfg_(cfg) {
  MPS_CHECK(cfg_.short_window >= 1);
  MPS_CHECK(cfg_.long_window >= cfg_.short_window);
  MPS_CHECK(cfg_.objective > 0.0 && cfg_.objective < 1.0);
}

bool SloTracker::observe(std::uint64_t tenant, double latency_ms, bool ok,
                         TenantSlo* out) {
  const bool bad = !ok || latency_ms > cfg_.latency_ms;
  const std::size_t lw = static_cast<std::size_t>(cfg_.long_window);
  const std::size_t sw = static_cast<std::size_t>(cfg_.short_window);
  std::lock_guard<std::mutex> lock(mutex_);
  State& s = tenants_[tenant];
  if (s.ring.empty()) s.ring.assign(lw, 0);
  // The short window is the trailing `sw` marks of the long ring:
  // maintain its bad count incrementally by retiring the mark that just
  // left it, then retire the mark leaving the long ring itself.
  if (s.count >= static_cast<long long>(sw)) {
    s.bad_short -= s.ring[(s.next + lw - sw) % lw];
  }
  if (s.count >= static_cast<long long>(lw)) {
    s.bad_long -= s.ring[s.next];
  } else {
    ++s.count;
  }
  s.ring[s.next] = bad ? 1 : 0;
  s.next = (s.next + 1) % lw;
  ++s.total;
  if (bad) {
    ++s.bad_total;
    ++s.bad_long;
    ++s.bad_short;
  }
  // Burn = (bad fraction) / (error budget fraction); both windows must
  // exceed the alert rate — the short window for responsiveness, the
  // long one so a burst that already passed cannot keep a tenant paged.
  const double budget = 1.0 - cfg_.objective;
  const long long n_long = s.count;
  const long long n_short =
      std::min<long long>(s.count, static_cast<long long>(sw));
  const double burn_short =
      n_short > 0
          ? (static_cast<double>(s.bad_short) / static_cast<double>(n_short)) /
                budget
          : 0.0;
  const double burn_long =
      n_long > 0
          ? (static_cast<double>(s.bad_long) / static_cast<double>(n_long)) /
                budget
          : 0.0;
  const bool now_alerting =
      burn_short > cfg_.burn_alert && burn_long > cfg_.burn_alert;
  const bool entered = now_alerting && !s.alerting;
  if (entered) ++s.alerts;
  s.alerting = now_alerting;
  if (out) *out = snapshot_locked(tenant, s);
  return entered;
}

TenantSlo SloTracker::snapshot_locked(std::uint64_t t, const State& s) const {
  TenantSlo out;
  out.tenant = t;
  out.total = s.total;
  out.bad = s.bad_total;
  const double budget = 1.0 - cfg_.objective;
  const long long n_long = s.count;
  const long long n_short =
      std::min<long long>(s.count, static_cast<long long>(cfg_.short_window));
  if (n_short > 0) {
    out.burn_short =
        (static_cast<double>(s.bad_short) / static_cast<double>(n_short)) /
        budget;
  }
  if (n_long > 0) {
    const double bad_frac =
        static_cast<double>(s.bad_long) / static_cast<double>(n_long);
    out.burn_long = bad_frac / budget;
    out.budget_remaining = 1.0 - bad_frac / budget;
  }
  out.alerting = s.alerting;
  out.alerts = s.alerts;
  return out;
}

std::vector<TenantSlo> SloTracker::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TenantSlo> out;
  out.reserve(tenants_.size());
  for (const auto& [t, s] : tenants_) out.push_back(snapshot_locked(t, s));
  return out;
}

TenantSlo SloTracker::tenant(std::uint64_t t) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(t);
  if (it == tenants_.end()) {
    TenantSlo out;
    out.tenant = t;
    return out;
  }
  return snapshot_locked(t, it->second);
}

std::vector<std::uint64_t> SloTracker::alerting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint64_t> out;
  for (const auto& [t, s] : tenants_) {
    if (s.alerting) out.push_back(t);
  }
  return out;
}

}  // namespace mps::serve
