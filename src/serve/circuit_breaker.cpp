#include "serve/circuit_breaker.hpp"

#include "util/env.hpp"

namespace mps::serve {

CircuitBreakerConfig CircuitBreakerConfig::resolve(CircuitBreakerConfig c) {
  // Strict parse (the MPS_SERVE_* contract, engine.cpp): garbage or
  // negative thresholds raise InvalidInputError instead of clamping.
  if (c.failure_threshold < 0) {
    c.failure_threshold = static_cast<int>(
        util::env_int_checked("MPS_SERVE_BREAKER_THRESHOLD", 5, 0, 1 << 30));
  }
  if (c.cooldown_ms < 0.0)
    c.cooldown_ms =
        util::env_double_checked("MPS_SERVE_BREAKER_COOLDOWN_MS", 250.0);
  return c;
}

void CircuitBreaker::admit(std::uint64_t key, double now_ms) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;  // never failed → closed
  Entry& e = it->second;
  switch (e.state) {
    case State::kClosed:
      return;
    case State::kOpen:
      if (now_ms - e.opened_at_ms >= cfg_.cooldown_ms) {
        e.state = State::kHalfOpen;
        ++stats_.probes;
        return;  // this caller is the probe
      }
      ++stats_.fail_fast;
      throw CircuitOpenError(
          "circuit open for matrix handle " + std::to_string(key) + " (" +
          std::to_string(e.consecutive_failures) +
          " consecutive failures); retry after cooldown");
    case State::kHalfOpen:
      // One probe is already in flight; everyone else still fails fast.
      ++stats_.fail_fast;
      throw CircuitOpenError("circuit half-open for matrix handle " +
                             std::to_string(key) +
                             ": probe in flight, retry shortly");
  }
}

bool CircuitBreaker::on_success(std::uint64_t key) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  const bool reclosed = it->second.state != State::kClosed;
  if (reclosed) ++stats_.reclosed;
  entries_.erase(it);  // healthy again — back to the implicit closed state
  return reclosed;
}

bool CircuitBreaker::on_failure(std::uint64_t key, double now_ms) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[key];
  ++e.consecutive_failures;
  if (e.state == State::kHalfOpen ||
      (e.state == State::kClosed &&
       e.consecutive_failures >= cfg_.failure_threshold)) {
    e.state = State::kOpen;
    e.opened_at_ms = now_ms;
    ++stats_.opened;
    return true;
  }
  return false;
}

CircuitBreaker::State CircuitBreaker::state(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  return it == entries_.end() ? State::kClosed : it->second.state;
}

}  // namespace mps::serve
