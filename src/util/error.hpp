#pragma once
// Unified error taxonomy (see docs/robustness.md).
//
// Every exception the library throws derives from mps::Error, so callers
// can catch one type at the top level and still dispatch on the concrete
// failure when they need to:
//
//   Error                 — root; derives std::runtime_error
//   ├─ InvalidInputError  — malformed arguments or matrices (contract
//   │                       violations, MPS_CHECK failures, strict-mode
//   │                       structural validation)
//   ├─ ParseError         — malformed input text (Matrix Market reader);
//   │                       carries the 1-based source line when known
//   ├─ PlanMismatchError  — a plan executed against a matrix whose
//   │                       pattern/precision drifted from the one it was
//   │                       built for
//   ├─ IoError            — file open/write failures
//   ├─ IntegrityError     — silent data corruption detected: a buffer
//   │                       checksum mismatch, a non-finite value or
//   │                       broken structure in a kernel's output, or a
//   │                       plan whose internal state no longer matches
//   │                       its build-time checksum (resilience/)
//   ├─ RecoveryError      — durable state (WAL / snapshot) cannot be
//   │                       restored: corruption anywhere other than a
//   │                       torn final WAL record, a snapshot checksum
//   │                       mismatch, or a replayed record whose matrix
//   │                       no longer matches its recorded handle
//   ├─ vgpu::DeviceOomError (memory_model.hpp) — device capacity
//   │                       exhausted, real or fault-injected
//   ├─ vgpu::DeviceLostError (chaos.hpp) — the device is permanently
//   │                       gone (chaos-injected loss); launches and
//   │                       allocations on it can never succeed again,
//   │                       so callers must fail over, not retry
//   └─ serving errors (serve/) — admission and lifecycle
//      ├─ serve::QueueFullError      — bounded queue full past deadline
//      ├─ serve::RequestTimeoutError — request expired before dispatch,
//      │                       immediately before execution, or between
//      │                       retry attempts
//      ├─ serve::ShutdownError       — engine stopped before the request ran
//      ├─ serve::LoadShedError (engine.hpp) — low-priority request shed
//      │                       at admission because queue depth crossed
//      │                       the shed watermark
//      └─ serve::CircuitOpenError (circuit_breaker.hpp) — fail-fast: the
//                              target matrix's circuit breaker is open
//                              after repeated execution failures
//
// Exception-safety contract: any kernel that throws one of these leaves
// device accounting back where it started (MemoryModel::in_use()
// unchanged) and caller-visible outputs untouched.  The fault-injection
// sweep in tests/fault_injection_test.cpp enforces this.

#include <stdexcept>
#include <string>

namespace mps {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed caller arguments or structurally invalid matrices.
class InvalidInputError : public Error {
 public:
  explicit InvalidInputError(const std::string& what) : Error(what) {}
};

/// Malformed input text; `line()` is 1-based, or -1 when unknown.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what, long long line = -1)
      : Error(line >= 0 ? what + " (line " + std::to_string(line) + ")" : what),
        line_(line) {}
  long long line() const { return line_; }

 private:
  long long line_;
};

/// A plan executed against inputs it was not built for.
class PlanMismatchError : public Error {
 public:
  explicit PlanMismatchError(const std::string& what) : Error(what) {}
};

/// File open/write failure.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Silent data corruption detected by an integrity guard: a checksum
/// mismatch, a non-finite value or structural violation in data that was
/// previously valid, or corrupted plan state.  Distinct from
/// InvalidInputError (the caller handed us bad data) — an IntegrityError
/// means data that *was* good went bad, so retry/recovery is meaningful.
class IntegrityError : public Error {
 public:
  explicit IntegrityError(const std::string& what) : Error(what) {}
};

/// Durable state (write-ahead log or snapshot) cannot be restored.  A torn
/// *final* WAL record is expected after a crash and is tolerated silently;
/// anything else — mid-log corruption, a snapshot checksum mismatch, a
/// replayed matrix that no longer fingerprints to its recorded handle —
/// raises this instead of silently serving wrong state (durability/).
class RecoveryError : public Error {
 public:
  explicit RecoveryError(const std::string& what) : Error(what) {}
};

}  // namespace mps
