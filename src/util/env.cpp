#include "util/env.hpp"

#include <cerrno>
#include <cstdlib>
#include <string>

#include "util/error.hpp"

namespace mps::util {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end && *end == '\0') ? parsed : fallback;
}

long long env_int(const char* name, long long fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end && *end == '\0') ? parsed : fallback;
}

long long env_int_auto(const char* name, long long fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 0);
  return (end && *end == '\0') ? parsed : fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::string(v) : fallback;
}

namespace {

[[noreturn]] void throw_env(const char* name, const char* raw,
                            const std::string& why) {
  throw mps::InvalidInputError(std::string(name) + "=\"" + raw + "\": " + why);
}

long long parse_int_strict(const char* name, const char* raw, int base,
                           long long min, long long max) {
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(raw, &end, base);
  if (end == raw || !end || *end != '\0')
    throw_env(name, raw, "not an integer");
  if (errno == ERANGE) throw_env(name, raw, "integer overflow");
  if (parsed < min || parsed > max)
    throw_env(name, raw,
              "out of range [" + std::to_string(min) + ", " +
                  std::to_string(max) + "]");
  return parsed;
}

}  // namespace

long long env_int_checked(const char* name, long long fallback, long long min,
                          long long max) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return parse_int_strict(name, v, 10, min, max);
}

long long env_int_auto_checked(const char* name, long long fallback,
                               long long min, long long max) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return parse_int_strict(name, v, 0, min, max);
}

double env_double_checked(const char* name, double fallback, double min) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v, &end);
  if (end == v || !end || *end != '\0') throw_env(name, v, "not a number");
  if (errno == ERANGE) throw_env(name, v, "out of representable range");
  if (!(parsed >= min))
    throw_env(name, v, "must be >= " + std::to_string(min));
  return parsed;
}

std::string env_path_checked(const char* name) {
  const char* v = std::getenv(name);
  if (!v) return "";
  if (!*v) throw_env(name, v, "set but empty (unset it to disable)");
  return std::string(v);
}

}  // namespace mps::util
