#include "util/env.hpp"

#include <cstdlib>

namespace mps::util {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end && *end == '\0') ? parsed : fallback;
}

long long env_int(const char* name, long long fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end && *end == '\0') ? parsed : fallback;
}

long long env_int_auto(const char* name, long long fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 0);
  return (end && *end == '\0') ? parsed : fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::string(v) : fallback;
}

}  // namespace mps::util
