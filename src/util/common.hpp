#pragma once
// Small shared helpers used across every module.
//
// Conventions (see DESIGN.md):
//  * `index_t` is the sparse index type (32-bit, as in the paper's GPU code).
//  * All divisions that size parallel decompositions go through ceil_div so
//    tile math is uniform everywhere.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "util/error.hpp"

namespace mps {

using index_t = std::int32_t;

/// Integer ceiling division; requires b > 0.
template <typename T>
constexpr T ceil_div(T a, T b) {
  return static_cast<T>((a + b - 1) / b);
}

/// Round `a` up to the next multiple of `b`; requires b > 0.
template <typename T>
constexpr T round_up(T a, T b) {
  return ceil_div(a, b) * b;
}

/// ceil(log2(x)) for x >= 1; log2_ceil(1) == 0.
constexpr int log2_ceil(std::uint64_t x) {
  int bits = 0;
  std::uint64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

/// floor(log2(x)) for x >= 1.
constexpr int log2_floor(std::uint64_t x) {
  int bits = 0;
  while (x >>= 1) ++bits;
  return bits;
}

constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Runtime invariant check that survives NDEBUG builds.  Used for argument
/// validation on public API boundaries; internal hot loops use plain assert.
/// Throws InvalidInputError (part of the mps::Error taxonomy, error.hpp).
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::string what = std::string("MPS_CHECK failed: ") + expr + " at " + file + ":" +
                     std::to_string(line);
  if (!msg.empty()) what += " — " + msg;
  throw InvalidInputError(what);
}

}  // namespace mps

#define MPS_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::mps::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MPS_CHECK_MSG(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) ::mps::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
