#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/common.hpp"

namespace mps::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

static inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint32_t Rng::next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

std::uint64_t Rng::uniform(std::uint64_t n) {
  MPS_CHECK(n > 0);
  // Lemire's multiply-shift rejection method, 64-bit variant.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform_double() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_double(double lo, double hi) {
  return lo + (hi - lo) * uniform_double();
}

double Rng::normal(double mu, double sigma) {
  double acc = 0.0;
  for (int i = 0; i < 12; ++i) acc += uniform_double();
  return mu + sigma * (acc - 6.0);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  MPS_CHECK(n >= 1);
  // Devroye's rejection method for the Zipf distribution.
  const double nd = static_cast<double>(n);
  auto h = [&](double x) {
    return (s == 1.0) ? std::log(x) : (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_inv = [&](double y) {
    return (s == 1.0) ? std::exp(y) : std::pow(1.0 + (1.0 - s) * y, 1.0 / (1.0 - s));
  };
  const double hx0 = h(nd + 0.5);
  const double hxm = h(0.5);
  for (;;) {
    const double u = hxm + uniform_double() * (hx0 - hxm);
    const double x = h_inv(u);
    const std::uint64_t k = static_cast<std::uint64_t>(std::llround(x));
    const std::uint64_t kk = std::min<std::uint64_t>(std::max<std::uint64_t>(k, 1), n);
    // Accept with probability proportional to the true pmf over the envelope.
    const double ratio =
        std::pow(static_cast<double>(kk), -s) /
        (h(static_cast<double>(kk) + 0.5) - h(static_cast<double>(kk) - 0.5));
    if (uniform_double() * std::pow(static_cast<double>(kk), -s) <=
        ratio * std::pow(static_cast<double>(kk), -s)) {
      return kk;
    }
  }
}

std::vector<std::uint32_t> sample_distinct_sorted(Rng& rng, std::uint32_t n,
                                                  std::uint32_t k) {
  MPS_CHECK(k <= n);
  std::vector<std::uint32_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (static_cast<std::uint64_t>(k) * 3 >= n) {
    // Dense selection sampling (Vitter's method A style).
    out.resize(k);
    std::uint32_t chosen = 0;
    for (std::uint32_t i = 0; i < n && chosen < k; ++i) {
      const std::uint64_t remaining = n - i;
      const std::uint64_t needed = k - chosen;
      if (rng.uniform(remaining) < needed) out[chosen++] = i;
    }
    return out;
  }
  // Floyd's algorithm for sparse k.
  std::unordered_set<std::uint32_t> set;
  set.reserve(k * 2);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const std::uint32_t t = static_cast<std::uint32_t>(rng.uniform(j + 1));
    if (!set.insert(t).second) set.insert(j);
  }
  out.assign(set.begin(), set.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mps::util
