#pragma once
// Descriptive statistics and linear fits used by the evaluation harness
// (correlation coefficients in Figs. 6, 8 and 10; row-degree moments in
// Table II).

#include <cstddef>
#include <span>
#include <vector>

namespace mps::util {

double mean(std::span<const double> xs);

/// Population standard deviation (the UFL table reports population std).
double stddev(std::span<const double> xs);

/// Pearson correlation coefficient.  Returns 0 for degenerate inputs
/// (fewer than two points or zero variance on either axis).
double pearson(std::span<const double> xs, std::span<const double> ys);

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r = 0.0;  ///< Pearson correlation of the fitted data.
};

/// Least-squares line through (x, y) pairs.
LinearFit least_squares(std::span<const double> xs, std::span<const double> ys);

/// Summary of a sample: n, min, max, mean, population std.
struct Summary {
  std::size_t n = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

Summary summarize(std::span<const double> xs);

/// Linear-interpolated percentile of a sample; `p` in [0, 100].  Returns
/// 0 for an empty sample.  Used by the serving engine's latency snapshot
/// (p50/p99) and bench/serve_throughput.
double percentile(std::span<const double> xs, double p);

}  // namespace mps::util
