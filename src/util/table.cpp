#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace mps::util {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void Table::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

static bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == 'e' || c == 'E' || c == '%' || c == ' ' || c == 'x')) {
      return false;
    }
  }
  return true;
}

std::string Table::render() const {
  std::vector<std::size_t> widths;
  auto widen = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row, bool align_right_numeric) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      const bool right = align_right_numeric && looks_numeric(cell);
      if (i) os << "  ";
      if (right) {
        os << std::string(widths[i] - cell.size(), ' ') << cell;
      } else {
        os << cell << std::string(widths[i] - cell.size(), ' ');
      }
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_, false);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    os << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r, true);
  return os.str();
}

std::string Table::csv() const {
  std::ostringstream os;
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += '"';
      q += c;
    }
    q += '"';
    return q;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << quote(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string fmt_sep(unsigned long long v) {
  std::string digits = std::to_string(v);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i && (n - i) % 3 == 0) out += ' ';
    out += digits[i];
  }
  return out;
}

}  // namespace mps::util
