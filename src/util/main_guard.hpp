#pragma once
// Top-level exception guard shared by every binary in tools/ and
// examples/: typed mps errors (and anything else) print to stderr with
// the program name and exit non-zero instead of calling std::terminate.

#include <cstdio>
#include <exception>

#include "util/error.hpp"

namespace mps::util {

/// Runs `body` (any callable returning int) under a catch-all.  Typed
/// mps::Error subclasses report their taxonomy name; the process exits 1
/// on any escaped exception.
template <typename Body>
int guarded_main(const char* program, Body&& body) {
  try {
    return body();
  } catch (const ParseError& e) {
    std::fprintf(stderr, "%s: parse error: %s\n", program, e.what());
  } catch (const IoError& e) {
    std::fprintf(stderr, "%s: io error: %s\n", program, e.what());
  } catch (const PlanMismatchError& e) {
    std::fprintf(stderr, "%s: plan mismatch: %s\n", program, e.what());
  } catch (const IntegrityError& e) {
    std::fprintf(stderr, "%s: integrity error: %s\n", program, e.what());
  } catch (const InvalidInputError& e) {
    std::fprintf(stderr, "%s: invalid input: %s\n", program, e.what());
  } catch (const Error& e) {
    std::fprintf(stderr, "%s: error: %s\n", program, e.what());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: error: %s\n", program, e.what());
  } catch (...) {
    std::fprintf(stderr, "%s: unknown error\n", program);
  }
  return 1;
}

}  // namespace mps::util
