#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mps::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 1) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  const double mx = mean(xs.first(n));
  const double my = mean(ys.first(n));
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit least_squares(std::span<const double> xs, std::span<const double> ys) {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return fit;
  const double mx = mean(xs.first(n));
  const double my = mean(ys.first(n));
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r = pearson(xs.first(n), ys.first(n));
  return fit;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::min(100.0, std::max(0.0, p));
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  return s;
}

}  // namespace mps::util
