#pragma once
// Environment-variable knobs shared by benches and examples.
//
//   MPS_SCALE    — workload scale factor (default 1.0 for SpMV/SpAdd suites,
//                  benches pass their own default for heavier kernels)
//   MPS_THREADS  — host worker threads for the virtual GPU (default: hw)
//   MPS_ITERS    — timing repetitions override
//
// Robustness knobs (docs/robustness.md):
//   MPS_FAULT_ALLOC_N     — fail the Nth device allocation per Device
//   MPS_FAULT_BYTE_LIMIT  — fail the allocation crossing this byte count
//   MPS_FAULT_CAPACITY    — cap device capacity in bytes
//   MPS_FAULT_BITFLIP_ALLOC / _OFFSET / _MASK / _EVERY — silent bit-flip
//                           injection into live device buffers
//   MPS_STRICT_VALIDATE   — 1: structurally validate matrices at kernel
//                           entry (InvalidInputError on violation);
//                           2: additionally reject non-finite values
//   MPS_INTEGRITY_CHECK   — 1: buffer checksums + kernel postcondition
//                           guards (IntegrityError on violation)
//
// Serving knobs (docs/serving.md; read by serve::EngineConfig::from_env
// for any field left zero):
//   MPS_SERVE_THREADS       — engine worker threads (default 4)
//   MPS_SERVE_QUEUE_CAP     — submission-queue capacity (default 1024)
//   MPS_SERVE_BATCH_WINDOW  — max same-matrix SpMV requests coalesced
//                             into one spmm dispatch (default 8)
//   MPS_SERVE_PLAN_CACHE_MB — plan-cache capacity in MiB (default 64)
//
// Autotuning knobs (docs/autotuning.md; read by mps::autotune):
//   MPS_AUTOTUNE        — 1: adaptive format/kernel selection for SpMV in
//                         the serving engine, examples and fig5 (default 0;
//                         results stay bitwise-identical to the static
//                         merge path — only the dispatch choice changes)
//   MPS_AUTOTUNE_TRIALS — cap on candidates tried per matrix (default 64,
//                         i.e. the full candidate space; 1 degenerates to
//                         the static merge default)

// Chaos knobs (docs/robustness.md; read by vgpu::ChaosSchedule::from_env):
//   MPS_CHAOS_SCRIPT — explicit fault timeline (device loss, stragglers,
//                      alloc failures, bit flips) in the chaos
//                      mini-language; see src/vgpu/chaos.hpp
//   MPS_CHAOS_SEED   — deterministic pseudo-random schedule (0 = off)
//
// Fault/chaos knobs, the serving-engine knobs (MPS_SERVE_*), and the
// durability knobs (MPS_DURABLE_*) parse STRICTLY via the *_checked
// variants below: a malformed, overflowing, or out-of-range value
// throws InvalidInputError naming the variable instead of silently
// falling back.  Bench-tuning knobs (MPS_SCALE, MPS_THREADS, ...) stay
// lenient.

#include <climits>
#include <string>

namespace mps::util {

double env_double(const char* name, double fallback);
long long env_int(const char* name, long long fallback);
/// Like env_int but auto-detects the base ("0x80" parses as hex).
long long env_int_auto(const char* name, long long fallback);
std::string env_string(const char* name, const std::string& fallback);

// Strict variants: unset (or empty) returns `fallback` untouched, but a
// set-and-malformed value — non-numeric trailing junk, out-of-range for
// the type (ERANGE), or outside [min, max] — throws InvalidInputError
// whose message names the environment variable.  Fault-injection and
// chaos configuration goes through these; a typo'd fault schedule must
// never silently run fault-free.
long long env_int_checked(const char* name, long long fallback,
                          long long min = 0, long long max = LLONG_MAX);
/// Strict + base auto-detection ("0x80" parses as hex).
long long env_int_auto_checked(const char* name, long long fallback,
                               long long min = 0, long long max = LLONG_MAX);
double env_double_checked(const char* name, double fallback, double min = 0.0);
/// Strict path knob: unset returns "", but SET-and-empty (e.g.
/// `MPS_TRACE_OUT= mps_serve ...`) throws InvalidInputError — an empty
/// output path is always a shell quoting accident, and silently
/// disabling the artifact the caller asked for is the worst response.
std::string env_path_checked(const char* name);

}  // namespace mps::util
