#pragma once
// Environment-variable knobs shared by benches and examples.
//
//   MPS_SCALE    — workload scale factor (default 1.0 for SpMV/SpAdd suites,
//                  benches pass their own default for heavier kernels)
//   MPS_THREADS  — host worker threads for the virtual GPU (default: hw)
//   MPS_ITERS    — timing repetitions override
//
// Robustness knobs (docs/robustness.md):
//   MPS_FAULT_ALLOC_N     — fail the Nth device allocation per Device
//   MPS_FAULT_BYTE_LIMIT  — fail the allocation crossing this byte count
//   MPS_FAULT_CAPACITY    — cap device capacity in bytes
//   MPS_FAULT_BITFLIP_ALLOC / _OFFSET / _MASK / _EVERY — silent bit-flip
//                           injection into live device buffers
//   MPS_STRICT_VALIDATE   — 1: structurally validate matrices at kernel
//                           entry (InvalidInputError on violation);
//                           2: additionally reject non-finite values
//   MPS_INTEGRITY_CHECK   — 1: buffer checksums + kernel postcondition
//                           guards (IntegrityError on violation)
//
// Serving knobs (docs/serving.md; read by serve::EngineConfig::from_env
// for any field left zero):
//   MPS_SERVE_THREADS       — engine worker threads (default 4)
//   MPS_SERVE_QUEUE_CAP     — submission-queue capacity (default 1024)
//   MPS_SERVE_BATCH_WINDOW  — max same-matrix SpMV requests coalesced
//                             into one spmm dispatch (default 8)
//   MPS_SERVE_PLAN_CACHE_MB — plan-cache capacity in MiB (default 64)
//
// Autotuning knobs (docs/autotuning.md; read by mps::autotune):
//   MPS_AUTOTUNE        — 1: adaptive format/kernel selection for SpMV in
//                         the serving engine, examples and fig5 (default 0;
//                         results stay bitwise-identical to the static
//                         merge path — only the dispatch choice changes)
//   MPS_AUTOTUNE_TRIALS — cap on candidates tried per matrix (default 64,
//                         i.e. the full candidate space; 1 degenerates to
//                         the static merge default)

#include <string>

namespace mps::util {

double env_double(const char* name, double fallback);
long long env_int(const char* name, long long fallback);
/// Like env_int but auto-detects the base ("0x80" parses as hex).
long long env_int_auto(const char* name, long long fallback);
std::string env_string(const char* name, const std::string& fallback);

}  // namespace mps::util
