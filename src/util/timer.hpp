#pragma once
// Wall-clock timing helpers.

#include <chrono>

namespace mps::util {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mps::util
