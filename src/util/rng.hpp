#pragma once
// Deterministic random number generation for workload synthesis.
//
// We deliberately avoid std::mt19937 + std::*_distribution because their
// output is not guaranteed identical across standard library versions, and
// the workload generators must produce byte-identical matrices everywhere
// (the experiment tables depend on it).

#include <cstdint>
#include <vector>

namespace mps::util {

/// splitmix64: used to expand a single u64 seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** — fast, high-quality, tiny-state PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  std::uint64_t next_u64();
  std::uint32_t next_u32();

  /// Uniform in [0, n) without modulo bias (Lemire reduction).
  std::uint64_t uniform(std::uint64_t n);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi);

  /// Approximately normal(mu, sigma) via sum of uniforms (12-term CLT).
  /// Deterministic and platform-independent, unlike std::normal_distribution.
  double normal(double mu, double sigma);

  /// Zipf-distributed integer in [1, n] with exponent s, via rejection
  /// sampling (Devroye).  Used for power-law row-degree generation.
  std::uint64_t zipf(std::uint64_t n, double s);

 private:
  std::uint64_t s_[4];
};

/// k distinct values sampled uniformly from [0, n), returned sorted.
/// Uses Floyd's algorithm for k << n and dense selection otherwise.
std::vector<std::uint32_t> sample_distinct_sorted(Rng& rng, std::uint32_t n,
                                                  std::uint32_t k);

}  // namespace mps::util
