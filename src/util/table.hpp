#pragma once
// Fixed-width console table and CSV emission.  Every bench binary prints
// its figure/table through this so the output format is uniform and easy
// to diff against EXPERIMENTS.md.

#include <string>
#include <vector>

namespace mps::util {

/// Column-aligned text table.  Add a header once, then rows; render()
/// right-aligns numeric-looking cells and left-aligns text.
class Table {
 public:
  explicit Table(std::string title = "");

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Render to a string with aligned columns and a rule under the header.
  std::string render() const;

  /// Render as CSV (no alignment, RFC-ish quoting of commas/quotes).
  std::string csv() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers used to fill table cells.
std::string fmt(double v, int precision = 2);
std::string fmt_int(long long v);
/// Human-readable count with thousands separators, e.g. 4 344 765.
std::string fmt_sep(unsigned long long v);

}  // namespace mps::util
