#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>

#include "util/env.hpp"

namespace mps::telemetry {

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<long long> Histogram::bucket_counts() const {
  std::vector<long long> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry

MetricsRegistry& metrics() {
  static MetricsRegistry r;
  return r;
}

const std::vector<double>& default_latency_bounds_ms() {
  static const std::vector<double> bounds{0.05, 0.1,  0.25, 0.5,  1.0,  2.5,
                                          5.0,  10.0, 25.0, 50.0, 100.0, 250.0,
                                          500.0, 1000.0};
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {

/// Finite-safe JSON number (NaN/Inf are not valid JSON).
std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string prom_name(const std::string& name) {
  std::string out = "mps_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string prom_num(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":" << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":" << json_num(g->value());
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":{\"count\":" << h->count()
        << ",\"sum\":" << json_num(h->sum()) << ",\"buckets\":[";
    const auto counts = h->bucket_counts();
    const auto& bounds = h->upper_bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i) out << ',';
      out << "{\"le\":"
          << (i < bounds.size() ? json_num(bounds[i]) : std::string("null"))
          << ",\"count\":" << counts[i] << '}';
    }
    out << "]}";
  }
  out << "}}";
}

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) {
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " counter\n" << p << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " gauge\n"
        << p << ' ' << prom_num(g->value()) << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " histogram\n";
    const auto counts = h->bucket_counts();
    const auto& bounds = h->upper_bounds();
    long long cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      out << p << "_bucket{le=\""
          << (i < bounds.size() ? prom_num(bounds[i]) : std::string("+Inf"))
          << "\"} " << cumulative << '\n';
    }
    out << p << "_sum " << prom_num(h->sum()) << '\n'
        << p << "_count " << h->count() << '\n';
  }
}

// ---------------------------------------------------------------------------
// Periodic dumper

PeriodicDumper::PeriodicDumper() {
  // Strict parse: a typo'd dump interval must fail loudly, not silently
  // run without periodic dumps (the MPS_SERVE_*/MPS_DURABLE_* rule).
  const long long interval_ms =
      util::env_int_checked("MPS_METRICS_DUMP_MS", 0);
  if (interval_ms <= 0) return;
  const std::string path = util::env_string("MPS_METRICS_DUMP_PATH", "");
  thread_ = std::thread([this, interval_ms, path] {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                       [&] { return stop_; })) {
        return;
      }
      std::ostringstream snapshot;
      metrics().write_json(snapshot);
      snapshot << '\n';
      if (path.empty()) {
        std::cerr << snapshot.str() << std::flush;
      } else {
        std::ofstream out(path, std::ios::app);
        if (out) out << snapshot.str();
      }
    }
  });
}

PeriodicDumper::~PeriodicDumper() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

}  // namespace mps::telemetry
