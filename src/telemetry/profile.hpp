#pragma once
// mps::telemetry — roofline attribution profiler (docs/observability.md).
//
// The paper's central claim is that merge-path SpMV is bandwidth-bound
// regardless of sparsity structure.  The profiler makes that checkable
// at runtime: every modeled kernel launch records the bytes it moved,
// the flops it performed, and the achieved-vs-peak-bandwidth fraction of
// the device it ran on, attributed along five axes — device, phase, op
// (kernel name), tenant (serve MatrixHandle), and shard.  A per-batch
// imbalance detector flags sharded dispatches whose critical-path device
// sits more than a threshold above the fleet mean, naming the straggler
// shard.
//
// Attribution context travels in plain thread-local storage: the serving
// engine scopes the tenant and phase around execution, the shard
// executor scopes the shard index and device ordinal around each shard
// kernel.  Scoping is only done while the profiler is enabled, so the
// disabled path in vgpu::Device::launch is one relaxed atomic load — and
// the profiler never charges the modeled cost model in either state
// (bench/plan_reuse_spmv and bench/serve_throughput assert the bit-zero
// modeled-time delta, like the tracer and chaos contracts).
//
// Enable with profiler().enable(), or configure_from_env() which honors
// the strict-parsed knobs:
//   MPS_PROFILE                — 1 enables the profiler (default 0)
//   MPS_PROFILE_IMBALANCE_PCT  — flag a sharded batch when its critical-
//                                path device exceeds the mean per-device
//                                busy time by more than this percentage
//                                (default 50)
//   MPS_PROFILE_ROOFLINE_FRAC  — achieved-bandwidth fraction below which
//                                an op aggregate is reported as NOT
//                                bandwidth-bound (default 0.35)

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace mps::telemetry {

/// Thread-local attribution for kernel launches.  Unset axes stay at
/// their defaults (tenant 0, shard/device -1, empty phase).
struct ProfAttr {
  std::uint64_t tenant = 0;  ///< serve MatrixHandle; 0 = none
  int shard = -1;            ///< shard index within the dispatch; -1 = unsharded
  int device = -1;           ///< fleet ordinal; -1 = unassigned
  const char* phase = "";    ///< coarse stage ("serve.spmv", "shard.spmv", ...)
};

/// The calling thread's attribution context (mutable reference).
ProfAttr& current_prof_attr();

/// RAII: overlay `attr` onto the thread's attribution for the scope.
/// Near-free (two thread-local struct copies, no atomics, no locks);
/// call sites still guard on profiler().enabled() to keep the disabled
/// path untouched.
class ProfAttrScope {
 public:
  explicit ProfAttrScope(const ProfAttr& attr) : prev_(current_prof_attr()) {
    current_prof_attr() = attr;
  }
  ~ProfAttrScope() { current_prof_attr() = prev_; }
  ProfAttrScope(const ProfAttrScope&) = delete;
  ProfAttrScope& operator=(const ProfAttrScope&) = delete;

 private:
  ProfAttr prev_;
};

/// Roofline aggregate over one attribution bucket.
struct RooflineAgg {
  long long launches = 0;
  double bytes = 0.0;       ///< global + gathered traffic
  double flops = 0.0;
  double modeled_ms = 0.0;
  /// Bytes the device(s) could have moved at peak bandwidth in the same
  /// modeled time (modeled_ns x peak bytes/ns, summed per launch) — the
  /// denominator of the achieved fraction, correct across heterogeneous
  /// devices.
  double capacity_bytes = 0.0;

  /// Achieved-vs-peak-bandwidth fraction: 1.0 means every modeled cycle
  /// was a memory cycle at full bandwidth.
  double achieved_frac() const {
    return capacity_bytes > 0.0 ? bytes / capacity_bytes : 0.0;
  }
  /// Arithmetic intensity (flops per byte moved).
  double intensity() const { return bytes > 0.0 ? flops / bytes : 0.0; }

  RooflineAgg& operator+=(const RooflineAgg& o) {
    launches += o.launches;
    bytes += o.bytes;
    flops += o.flops;
    modeled_ms += o.modeled_ms;
    capacity_bytes += o.capacity_bytes;
    return *this;
  }
};

/// One shard's contribution to a sharded dispatch (imbalance input).
struct ShardSample {
  std::size_t shard = 0;
  int device = -1;
  double busy_ms = 0.0;  ///< halo + kernel time charged to the device
};

/// A flagged sharded dispatch: the critical-path device exceeded the
/// fleet mean by more than the threshold.  Names the straggler.
struct ImbalanceFlag {
  std::uint64_t tenant = 0;
  std::size_t straggler_shard = 0;  ///< heaviest shard on the straggler
  int straggler_device = -1;
  double straggler_ms = 0.0;  ///< the critical-path device's busy time
  double mean_ms = 0.0;       ///< mean busy over devices that did work
  double ratio = 0.0;         ///< straggler_ms / mean_ms
};

/// Snapshot of everything the profiler aggregated (report()).
struct ProfileReport {
  std::map<std::string, RooflineAgg> by_op;     ///< kernel name
  std::map<std::string, RooflineAgg> by_phase;  ///< ProfAttr::phase
  std::map<int, RooflineAgg> by_device;         ///< fleet ordinal (-1 = unassigned)
  std::map<std::uint64_t, RooflineAgg> by_tenant;
  std::map<std::pair<std::uint64_t, int>, RooflineAgg> by_shard;  ///< (tenant, shard)
  /// Ops whose aggregate achieved fraction fell below roofline_frac —
  /// "not bandwidth-bound" by the paper's criterion.
  std::vector<std::string> below_roofline;
  long long shard_batches = 0;  ///< sharded dispatches examined
  std::vector<ImbalanceFlag> imbalance_flags;  ///< bounded (most recent kept)
  long long imbalance_total = 0;  ///< flags raised (>= imbalance_flags.size())
  double imbalance_threshold_pct = 0.0;
  double roofline_frac = 0.0;
};

/// Process-wide roofline attribution collector.  Thread-safe; disabled
/// by default (record paths degenerate to one relaxed atomic load at the
/// call sites that guard on enabled()).
class Profiler {
 public:
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  /// Drop every aggregate and flag (thresholds are kept).
  void clear();

  /// Strict-parse the MPS_PROFILE_* knobs (garbage raises
  /// InvalidInputError naming the variable) and enable when MPS_PROFILE
  /// is 1.  Returns enabled().
  bool configure_from_env();

  void set_imbalance_threshold_pct(double pct);
  void set_roofline_frac(double frac);
  double imbalance_threshold_pct() const;
  double roofline_frac() const;

  /// Record one modeled kernel launch.  `bytes` is the kernel's summed
  /// global + gathered traffic, `peak_bytes_per_ns` the launching
  /// device's DeviceProperties::global_bytes_per_ns().  Attribution axes
  /// come from the calling thread's ProfAttr.  Never touches modeled
  /// time.
  void record_kernel(const std::string& name, double bytes, double flops,
                     double modeled_ms, double peak_bytes_per_ns);

  /// Examine one sharded dispatch's per-shard busy samples; raises an
  /// ImbalanceFlag when the critical-path device's summed busy time
  /// exceeds the mean over active devices by more than the threshold.
  /// Returns true when flagged.
  bool note_shard_batch(std::uint64_t tenant,
                        std::span<const ShardSample> samples);

  ProfileReport report() const;
  /// JSON snapshot of report() (self-contained object; embedded in
  /// flight-recorder debug bundles).
  void write_json(std::ostream& out) const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::map<std::string, RooflineAgg> by_op_;
  std::map<std::string, RooflineAgg> by_phase_;
  std::map<int, RooflineAgg> by_device_;
  std::map<std::uint64_t, RooflineAgg> by_tenant_;
  std::map<std::pair<std::uint64_t, int>, RooflineAgg> by_shard_;
  long long shard_batches_ = 0;
  long long imbalance_total_ = 0;
  std::vector<ImbalanceFlag> imbalance_flags_;  ///< ring of kMaxFlags
  std::size_t flag_next_ = 0;
  double imbalance_threshold_pct_ = 50.0;
  double roofline_frac_ = 0.35;

  static constexpr std::size_t kMaxFlags = 256;
};

/// The process-wide profiler.
Profiler& profiler();

}  // namespace mps::telemetry
