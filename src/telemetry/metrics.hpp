#pragma once
// mps::telemetry — process-wide metrics registry (docs/observability.md).
//
// Three instrument kinds, all with a lock-free fast path:
//
//   * Counter   — monotone add; relaxed atomic increments;
//   * Gauge     — last-value set() plus a high-water update_max() (CAS
//                 loop), for things like device-memory peaks;
//   * Histogram — fixed upper-bound buckets chosen at registration
//                 (cumulative counts exported Prometheus-style), for
//                 latency distributions.
//
// Registration (metrics().counter("serve.requests.accepted")) takes a
// mutex once and returns a reference that stays valid for the process
// lifetime — call sites cache it (typically in a function-local static
// struct) and then only touch atomics.  Metric names are dotted
// lowercase ("subsystem.object.event"); the Prometheus exporter maps
// them to mps_subsystem_object_event.
//
// Exports: write_json() (machine-readable snapshot, one object per
// instrument kind) and write_prometheus() (text exposition format 0.0.4).
// tools/mps_serve exposes both via --metrics-out / --metrics-prom, and a
// PeriodicDumper instance honors the MPS_METRICS_DUMP_MS env knob.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mps::telemetry {

class Counter {
 public:
  void add(long long d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  long long value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// Raise the gauge to `v` if it exceeds the current value (high-water
  /// marks; lock-free CAS loop).
  void update_max(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; an implicit +inf bucket
  /// is appended.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  long long count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts, one per bound plus the +inf
  /// bucket.
  std::vector<long long> bucket_counts() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<long long>> buckets_;  ///< bounds_.size() + 1
  std::atomic<long long> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name → instrument registry.  Instruments are created on first use and
/// never destroyed; returned references are stable for the process
/// lifetime.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Registering an existing histogram name returns it unchanged (the
  /// first registration's buckets win).
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds);

  /// JSON snapshot: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void write_json(std::ostream& out) const;
  /// Prometheus text exposition (names prefixed mps_, dots → underscores).
  void write_prometheus(std::ostream& out) const;

  /// Zero every instrument's value (tests; registrations are kept so
  /// cached references stay valid).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry.
MetricsRegistry& metrics();

/// Default latency-histogram bounds (milliseconds).
const std::vector<double>& default_latency_bounds_ms();

/// Background metrics dumper honoring MPS_METRICS_DUMP_MS: when the knob
/// is a positive interval, a thread writes a JSON snapshot every interval
/// to MPS_METRICS_DUMP_PATH (appending one snapshot per line; stderr when
/// unset) until destruction.  With the knob unset this is inert.
class PeriodicDumper {
 public:
  PeriodicDumper();
  ~PeriodicDumper();
  PeriodicDumper(const PeriodicDumper&) = delete;
  PeriodicDumper& operator=(const PeriodicDumper&) = delete;

  bool running() const { return thread_.joinable(); }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace mps::telemetry
