#include "telemetry/flight.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "telemetry/metrics.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/span.hpp"
#include "util/env.hpp"

namespace mps::telemetry {

namespace {

std::atomic<std::uint64_t> g_seq{1};

const std::chrono::steady_clock::time_point g_epoch =
    std::chrono::steady_clock::now();

double wall_ms_now() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - g_epoch)
      .count();
}

void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (c < 0x20 || c >= 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

/// Fixed-capacity per-thread event ring.  The ring's mutex is
/// uncontended in steady state (only snapshot/clear from other threads
/// touch it).
struct FlightRecorder::Ring {
  explicit Ring(std::size_t capacity) { events.resize(capacity); }
  std::mutex mutex;
  std::vector<FlightEvent> events;
  std::size_t next = 0;
  std::size_t count = 0;
};

FlightRecorder::FlightRecorder() {
  ring_capacity_ = static_cast<std::size_t>(
      util::env_int_checked("MPS_FLIGHT_RING", 256, 16, 1 << 20));
  dump_dir_ = util::env_path_checked("MPS_FLIGHT_DIR");
}

FlightRecorder& flight() {
  static FlightRecorder f;
  return f;
}

FlightRecorder::Ring& FlightRecorder::thread_ring() {
  thread_local std::shared_ptr<Ring> ring;
  if (!ring) {
    ring = std::make_shared<Ring>(ring_capacity_);
    std::lock_guard<std::mutex> lock(registry_mutex_);
    rings_.push_back(ring);
  }
  return *ring;
}

void FlightRecorder::note(const char* kind, std::string name,
                          std::string detail) {
  FlightEvent ev;
  ev.seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  ev.wall_ms = wall_ms_now();
  ev.tid = current_tid();
  ev.kind = kind;
  ev.name = std::move(name);
  ev.detail = std::move(detail);
  Ring& ring = thread_ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  ring.events[ring.next] = std::move(ev);
  ring.next = (ring.next + 1) % ring.events.size();
  if (ring.count < ring.events.size()) ++ring.count;
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    rings = rings_;
  }
  std::vector<FlightEvent> out;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    for (std::size_t i = 0; i < ring->count; ++i) {
      out.push_back(ring->events[i]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

void FlightRecorder::clear() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    rings = rings_;
  }
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    ring->next = 0;
    ring->count = 0;
  }
}

int FlightRecorder::register_state_provider(std::string name,
                                            StateProvider provider) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const int id = next_provider_id_++;
  providers_.push_back({id, std::move(name), std::move(provider)});
  return id;
}

void FlightRecorder::unregister_state_provider(int id) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  providers_.erase(std::remove_if(providers_.begin(), providers_.end(),
                                  [id](const NamedProvider& p) {
                                    return p.id == id;
                                  }),
                   providers_.end());
}

void FlightRecorder::write_bundle(std::ostream& out,
                                  const std::string& reason) const {
  out << "{\"bundle\":\"mps-flight\",\"schema\":1,\"reason\":";
  write_escaped(out, reason);
  out << ",\"wall_ms\":" << wall_ms_now()
      << ",\"ring_capacity\":" << ring_capacity_ << ",\"events\":[";
  bool first = true;
  for (const FlightEvent& ev : snapshot()) {
    if (!first) out << ',';
    first = false;
    out << "{\"seq\":" << ev.seq << ",\"wall_ms\":" << ev.wall_ms
        << ",\"tid\":" << ev.tid << ",\"kind\":";
    write_escaped(out, ev.kind);
    out << ",\"name\":";
    write_escaped(out, ev.name);
    out << ",\"detail\":";
    write_escaped(out, ev.detail);
    out << '}';
  }
  out << "],\"metrics\":";
  metrics().write_json(out);
  out << ",\"profile\":";
  profiler().write_json(out);
  out << ",\"state\":{";
  std::vector<NamedProvider> providers;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    providers = providers_;
  }
  first = true;
  for (const NamedProvider& p : providers) {
    if (!first) out << ',';
    first = false;
    write_escaped(out, p.name);
    out << ':';
    // Providers are best-effort: a throwing provider must not lose the
    // bundle, and a half-written value must not corrupt the JSON.
    std::ostringstream value;
    try {
      p.fn(value);
      out << (value.str().empty() ? "null" : value.str());
    } catch (...) {
      out << "null";
    }
  }
  out << "}}";
}

std::string FlightRecorder::dump_bundle(const std::string& reason) const {
  if (dump_dir_.empty()) return "";
  std::string slug;
  for (char c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    slug += ok ? c : '-';
  }
  const std::string path = dump_dir_ + "/flight_bundle_" + slug + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return "";
  write_bundle(out, reason);
  out << '\n';
  return out ? path : "";
}

}  // namespace mps::telemetry
