#pragma once
// mps::telemetry — unified spans (docs/observability.md).
//
// A Span is one named, timed interval on a named track; the process-wide
// Tracer collects finished spans so an exporter (vgpu/trace.hpp's
// write_perfetto_trace) can lay serving-request lanes, host phase spans
// and modeled device kernels on one correlated timeline.
//
// Correlation model: every span carries a (trace_id, span_id, parent_id)
// triple.  A serving request opens a fresh trace; host phases executed on
// its behalf become child spans via the thread-local *current context*
// (ContextScope / ScopedSpan propagate it), and vgpu::Device::launch
// stamps the active context into each KernelStats record — so one trace
// id threads a request through every host phase and device kernel it ran.
//
// Cost contract: instrumentation is compiled in everywhere but must be
// near-zero-cost when no subscriber is attached.  With the tracer
// disabled (the default), constructing a ScopedSpan is one relaxed atomic
// load and no allocation, no clock read, no lock; the modeled device
// timeline is untouched in either state (spans never charge the cost
// model — bench/plan_reuse_spmv asserts the zero-delta, mirroring the
// MPS_INTEGRITY_CHECK contract).
//
// Enable by calling tracer().enable() (tools do this when --trace-out or
// MPS_TRACE_OUT is given).  The tracer is thread-safe: record() appends
// under a mutex, snapshot() copies.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mps::telemetry {

using TraceId = std::uint64_t;
using SpanId = std::uint64_t;

/// The (trace, span) pair propagated through thread-local storage; the
/// zero context means "no active span".
struct SpanContext {
  TraceId trace_id = 0;
  SpanId span_id = 0;
  bool active() const { return span_id != 0; }
};

/// One finished span, as stored by the Tracer.
struct SpanRecord {
  TraceId trace_id = 0;
  SpanId span_id = 0;
  SpanId parent_id = 0;
  std::string name;
  std::string track;  ///< timeline grouping: "host", "serve", ...
  std::string status; ///< optional outcome tag ("ok", "error", ...)
  double start_us = 0.0;  ///< wall microseconds since the tracer epoch
  double dur_us = 0.0;
  std::uint32_t tid = 0;  ///< stable small id of the recording thread
};

/// Thread-safe collector of finished spans.  Disabled by default; when
/// disabled every instrumentation call site degenerates to one relaxed
/// atomic load.
class Tracer {
 public:
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Start collecting; the first enable() fixes the epoch all span
  /// timestamps are relative to (re-enabling keeps it).
  void enable();
  void disable();
  /// Drop collected spans (the epoch is kept).
  void clear();

  /// Microseconds since the epoch (0 until the first enable()).
  double now_us() const;

  TraceId next_trace_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  SpanId next_span_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Append a finished span (no-op while disabled).
  void record(SpanRecord rec);

  std::vector<SpanRecord> snapshot() const;
  std::size_t size() const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> epoch_set_{false};
  std::chrono::steady_clock::time_point epoch_{};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

/// The process-wide tracer.
Tracer& tracer();

/// The calling thread's active span context (zero when none).
SpanContext current_context();

/// Stable small id for the calling thread (for trace export lanes).
std::uint32_t current_tid();

/// RAII: make `ctx` the thread's current context for the scope.  Used by
/// the serving engine to run a worker's execution under the request's
/// span so nested ScopedSpans and kernel launches correlate to it.
class ContextScope {
 public:
  explicit ContextScope(SpanContext ctx);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  SpanContext prev_;
};

/// RAII span: starts at construction, records at destruction (or at an
/// explicit end()).  Inherits the trace id of — and parents itself under
/// — the current context, becomes the current context for its scope, and
/// opens a fresh trace when there is none.  Inactive (free) while the
/// tracer is disabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* track = "host");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Finish early (idempotent); `status` lands in the record.
  void end(const char* status = "");

  /// This span's context (zero when the tracer was disabled at
  /// construction).
  SpanContext context() const { return ctx_; }

 private:
  bool active_ = false;
  SpanContext ctx_;
  SpanContext prev_;
  const char* name_ = "";
  const char* track_ = "";
  double start_us_ = 0.0;
};

}  // namespace mps::telemetry
