#include "telemetry/span.hpp"

#include "telemetry/flight.hpp"

namespace mps::telemetry {

namespace {

thread_local SpanContext t_current{};

std::uint32_t next_tid() {
  static std::atomic<std::uint32_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer& tracer() {
  static Tracer t;
  return t;
}

SpanContext current_context() { return t_current; }

std::uint32_t current_tid() {
  thread_local std::uint32_t tid = next_tid();
  return tid;
}

void Tracer::enable() {
  bool expected = false;
  if (epoch_set_.compare_exchange_strong(expected, true)) {
    epoch_ = std::chrono::steady_clock::now();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
}

double Tracer::now_us() const {
  if (!epoch_set_.load(std::memory_order_acquire)) return 0.0;
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::record(SpanRecord rec) {
  if (!enabled()) return;
  // Mirror finished spans into the flight recorder's bounded ring so a
  // debug bundle holds the recent spans even after the tracer's own
  // (unbounded) log has grown past usefulness.
  flight().note("span", rec.name, rec.status);
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(rec));
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

ContextScope::ContextScope(SpanContext ctx) : prev_(t_current) {
  t_current = ctx;
}

ContextScope::~ContextScope() { t_current = prev_; }

ScopedSpan::ScopedSpan(const char* name, const char* track) {
  Tracer& t = tracer();
  if (!t.enabled()) return;
  active_ = true;
  name_ = name;
  track_ = track;
  prev_ = t_current;
  ctx_.trace_id = prev_.active() ? prev_.trace_id : t.next_trace_id();
  ctx_.span_id = t.next_span_id();
  t_current = ctx_;
  start_us_ = t.now_us();
}

void ScopedSpan::end(const char* status) {
  if (!active_) return;
  active_ = false;
  t_current = prev_;
  Tracer& t = tracer();
  SpanRecord rec;
  rec.trace_id = ctx_.trace_id;
  rec.span_id = ctx_.span_id;
  rec.parent_id = prev_.span_id;
  rec.name = name_;
  rec.track = track_;
  rec.status = status;
  rec.start_us = start_us_;
  rec.dur_us = t.now_us() - start_us_;
  rec.tid = current_tid();
  t.record(std::move(rec));
}

ScopedSpan::~ScopedSpan() { end(); }

}  // namespace mps::telemetry
