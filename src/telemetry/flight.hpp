#pragma once
// mps::telemetry — always-on flight recorder (docs/observability.md).
//
// A bounded per-thread ring of recent events: request settles, failures,
// failovers, device losses, durability activity, and (while the tracer
// is enabled) finished spans.  Unlike the tracer — which is off by
// default and unbounded while on — the flight recorder is always
// recording and never grows: each thread owns a fixed-size ring, so the
// memory footprint is threads x ring_capacity events no matter how long
// the process runs.  When something goes wrong the rings are dumped as a
// self-contained JSON debug bundle: recent events in global order, a
// metrics-registry snapshot, the roofline profiler's aggregates, and
// whatever state providers (the serving engine, the device fleet) have
// registered.
//
// Bundle triggers: serve::Engine dumps on DeviceLostError, terminal
// IntegrityError, and RecoveryError; durability::detail::crash_hit dumps
// before the injected _exit (so every MPS_DURABLE_CRASH point leaves a
// bundle, asserted by scripts/crash_matrix.sh); tools/mps_serve dumps on
// demand via --dump-bundle.  File dumps only happen when MPS_FLIGHT_DIR
// names a directory — the in-memory ring is always on, but a library
// must not spray files into the working directory uninvited.
//
// Knobs (strict-parsed; garbage raises InvalidInputError):
//   MPS_FLIGHT_RING — per-thread ring capacity in events (default 256,
//                     clamped to [16, 1048576])
//   MPS_FLIGHT_DIR  — directory for triggered bundle files (default
//                     unset = triggered dumps are skipped)
//
// Cost contract: note() is a clock read plus one slot write under the
// ring's (uncontended) mutex — host-side only, never modeled time.  The
// zero-modeled-overhead benches cover the flight recorder alongside the
// tracer and profiler.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mps::telemetry {

/// One recorded event.  `seq` is a process-global order stamp.
struct FlightEvent {
  std::uint64_t seq = 0;
  double wall_ms = 0.0;  ///< since the recorder's (process-start) epoch
  std::uint32_t tid = 0;
  std::string kind;    ///< "span", "request", "failover", "crash", ...
  std::string name;
  std::string detail;  ///< optional free-form context
};

class FlightRecorder {
 public:
  FlightRecorder();

  /// Append an event to the calling thread's ring (always on).
  void note(const char* kind, std::string name, std::string detail = "");

  /// All retained events, merged across threads in seq order.
  std::vector<FlightEvent> snapshot() const;
  /// Drop every retained event (rings stay registered).
  void clear();

  std::size_t ring_capacity() const { return ring_capacity_; }
  const std::string& dump_dir() const { return dump_dir_; }

  /// A named callback that writes ONE JSON value describing live state
  /// (the serving engine registers its stats + plan cache + explain
  /// data).  Providers must be best-effort and deadlock-free: bundles
  /// are dumped from failure paths that may hold engine locks, so
  /// implementations use try_lock and report what they can.
  using StateProvider = std::function<void(std::ostream&)>;
  /// Returns a registration id for unregister_state_provider.
  int register_state_provider(std::string name, StateProvider provider);
  void unregister_state_provider(int id);

  /// Write the self-contained debug bundle JSON to `out`.
  void write_bundle(std::ostream& out, const std::string& reason) const;

  /// Write the bundle to "<MPS_FLIGHT_DIR>/flight_bundle_<reason>.json"
  /// (reason sanitized).  Returns the path, or "" when MPS_FLIGHT_DIR is
  /// unset (no file written) or the write failed.
  std::string dump_bundle(const std::string& reason) const;

 private:
  struct Ring;
  Ring& thread_ring();

  std::size_t ring_capacity_ = 256;
  std::string dump_dir_;
  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<Ring>> rings_;
  struct NamedProvider {
    int id = 0;
    std::string name;
    StateProvider fn;
  };
  std::vector<NamedProvider> providers_;
  int next_provider_id_ = 1;
};

/// The process-wide flight recorder.  First use reads the MPS_FLIGHT_*
/// knobs (strict).
FlightRecorder& flight();

}  // namespace mps::telemetry
