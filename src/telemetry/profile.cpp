#include "telemetry/profile.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/env.hpp"

namespace mps::telemetry {

ProfAttr& current_prof_attr() {
  thread_local ProfAttr attr;
  return attr;
}

Profiler& profiler() {
  static Profiler p;
  return p;
}

void Profiler::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  by_op_.clear();
  by_phase_.clear();
  by_device_.clear();
  by_tenant_.clear();
  by_shard_.clear();
  shard_batches_ = 0;
  imbalance_total_ = 0;
  imbalance_flags_.clear();
  flag_next_ = 0;
}

bool Profiler::configure_from_env() {
  const long long on = util::env_int_checked("MPS_PROFILE", 0, 0, 1);
  const double pct =
      util::env_double_checked("MPS_PROFILE_IMBALANCE_PCT", 50.0, 0.0);
  const double frac =
      util::env_double_checked("MPS_PROFILE_ROOFLINE_FRAC", 0.35, 0.0);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    imbalance_threshold_pct_ = pct;
    roofline_frac_ = frac;
  }
  if (on) enable();
  return enabled();
}

void Profiler::set_imbalance_threshold_pct(double pct) {
  std::lock_guard<std::mutex> lock(mutex_);
  imbalance_threshold_pct_ = pct;
}

void Profiler::set_roofline_frac(double frac) {
  std::lock_guard<std::mutex> lock(mutex_);
  roofline_frac_ = frac;
}

double Profiler::imbalance_threshold_pct() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return imbalance_threshold_pct_;
}

double Profiler::roofline_frac() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return roofline_frac_;
}

void Profiler::record_kernel(const std::string& name, double bytes,
                             double flops, double modeled_ms,
                             double peak_bytes_per_ns) {
  const ProfAttr attr = current_prof_attr();
  RooflineAgg sample;
  sample.launches = 1;
  sample.bytes = bytes;
  sample.flops = flops;
  sample.modeled_ms = modeled_ms;
  sample.capacity_bytes = modeled_ms * 1e6 * peak_bytes_per_ns;
  std::lock_guard<std::mutex> lock(mutex_);
  by_op_[name] += sample;
  by_phase_[attr.phase[0] ? attr.phase : "(none)"] += sample;
  by_device_[attr.device] += sample;
  if (attr.tenant != 0) {
    by_tenant_[attr.tenant] += sample;
    if (attr.shard >= 0) by_shard_[{attr.tenant, attr.shard}] += sample;
  }
}

bool Profiler::note_shard_batch(std::uint64_t tenant,
                                std::span<const ShardSample> samples) {
  if (samples.empty()) return false;
  // Critical path is per DEVICE: a device hosting two shards is busy for
  // their sum, and the dispatch completes when the busiest device does.
  std::map<int, double> busy;
  for (const ShardSample& s : samples) busy[s.device] += s.busy_ms;
  double total = 0.0;
  double max_busy = 0.0;
  int straggler_device = -1;
  for (const auto& [dev, ms] : busy) {
    total += ms;
    if (ms > max_busy) {
      max_busy = ms;
      straggler_device = dev;
    }
  }
  const double mean = total / static_cast<double>(busy.size());
  std::lock_guard<std::mutex> lock(mutex_);
  ++shard_batches_;
  if (busy.size() < 2 || mean <= 0.0) return false;
  if (max_busy <= mean * (1.0 + imbalance_threshold_pct_ / 100.0)) {
    return false;
  }
  ImbalanceFlag flag;
  flag.tenant = tenant;
  flag.straggler_device = straggler_device;
  flag.straggler_ms = max_busy;
  flag.mean_ms = mean;
  flag.ratio = max_busy / mean;
  // Name the heaviest shard on the straggler device.
  double best = -1.0;
  for (const ShardSample& s : samples) {
    if (s.device == straggler_device && s.busy_ms > best) {
      best = s.busy_ms;
      flag.straggler_shard = s.shard;
    }
  }
  ++imbalance_total_;
  if (imbalance_flags_.size() < kMaxFlags) {
    imbalance_flags_.push_back(flag);
  } else {
    imbalance_flags_[flag_next_] = flag;
    flag_next_ = (flag_next_ + 1) % kMaxFlags;
  }
  return true;
}

ProfileReport Profiler::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ProfileReport r;
  r.by_op = by_op_;
  r.by_phase = by_phase_;
  r.by_device = by_device_;
  r.by_tenant = by_tenant_;
  r.by_shard = by_shard_;
  r.shard_batches = shard_batches_;
  r.imbalance_flags = imbalance_flags_;
  r.imbalance_total = imbalance_total_;
  r.imbalance_threshold_pct = imbalance_threshold_pct_;
  r.roofline_frac = roofline_frac_;
  for (const auto& [name, agg] : by_op_) {
    if (agg.achieved_frac() < roofline_frac_) r.below_roofline.push_back(name);
  }
  return r;
}

namespace {

std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os << v;
  return os.str();
}

void write_agg(std::ostream& out, const RooflineAgg& a) {
  out << "{\"launches\":" << a.launches << ",\"bytes\":" << num(a.bytes)
      << ",\"flops\":" << num(a.flops)
      << ",\"modeled_ms\":" << num(a.modeled_ms)
      << ",\"achieved_frac\":" << num(a.achieved_frac())
      << ",\"intensity\":" << num(a.intensity()) << '}';
}

}  // namespace

void Profiler::write_json(std::ostream& out) const {
  const ProfileReport r = report();
  out << "{\"enabled\":" << (enabled() ? "true" : "false")
      << ",\"roofline_frac\":" << num(r.roofline_frac)
      << ",\"imbalance_threshold_pct\":" << num(r.imbalance_threshold_pct);
  const auto emit_str_map = [&](const char* key, const auto& m) {
    out << ",\"" << key << "\":{";
    bool first = true;
    for (const auto& [k, agg] : m) {
      if (!first) out << ',';
      first = false;
      out << '"' << k << "\":";
      write_agg(out, agg);
    }
    out << '}';
  };
  emit_str_map("by_op", r.by_op);
  emit_str_map("by_phase", r.by_phase);
  out << ",\"by_device\":{";
  bool first = true;
  for (const auto& [dev, agg] : r.by_device) {
    if (!first) out << ',';
    first = false;
    out << '"' << dev << "\":";
    write_agg(out, agg);
  }
  out << "},\"by_tenant\":{";
  first = true;
  for (const auto& [tenant, agg] : r.by_tenant) {
    if (!first) out << ',';
    first = false;
    out << '"' << tenant << "\":";
    write_agg(out, agg);
  }
  out << "},\"by_shard\":{";
  first = true;
  for (const auto& [key, agg] : r.by_shard) {
    if (!first) out << ',';
    first = false;
    out << '"' << key.first << '/' << key.second << "\":";
    write_agg(out, agg);
  }
  out << "},\"below_roofline\":[";
  first = true;
  for (const auto& name : r.below_roofline) {
    if (!first) out << ',';
    first = false;
    out << '"' << name << '"';
  }
  out << "],\"shard_batches\":" << r.shard_batches
      << ",\"imbalance_total\":" << r.imbalance_total
      << ",\"imbalance_flags\":[";
  first = true;
  for (const auto& f : r.imbalance_flags) {
    if (!first) out << ',';
    first = false;
    out << "{\"tenant\":" << f.tenant
        << ",\"straggler_shard\":" << f.straggler_shard
        << ",\"straggler_device\":" << f.straggler_device
        << ",\"straggler_ms\":" << num(f.straggler_ms)
        << ",\"mean_ms\":" << num(f.mean_ms) << ",\"ratio\":" << num(f.ratio)
        << '}';
  }
  out << "]}";
}

}  // namespace mps::telemetry
