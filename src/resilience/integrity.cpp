#include "resilience/integrity.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"
#include "util/common.hpp"
#include "util/env.hpp"

namespace mps::resilience {

bool integrity_checks_enabled() {
  return util::env_int("MPS_INTEGRITY_CHECK", 0) != 0;
}

Counters& counters() {
  static Counters c;
  return c;
}

void integrity_failed(const std::string& what) {
  ++counters().integrity_failures;
  telemetry::metrics().counter("resilience.integrity_failures").add();
  throw IntegrityError("integrity check failed: " + what);
}

std::uint64_t checksum_bytes(const void* data, std::size_t bytes,
                             std::uint64_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

double charge_guard_scan(vgpu::Device& device, std::size_t bytes) {
  // One streaming pass at full occupancy: each CTA reads a contiguous
  // tile and folds it with a handful of ALU ops per word.
  constexpr std::size_t kTile = 128 * 1024;
  const int num_ctas = static_cast<int>(ceil_div(std::max<std::size_t>(bytes, 1), kTile));
  const std::size_t per_cta = ceil_div(bytes, static_cast<std::size_t>(num_ctas));
  return device
      .launch("integrity.guard_scan", num_ctas, 128,
              [&](vgpu::Cta& cta) {
                const std::size_t lo =
                    std::min(bytes, static_cast<std::size_t>(cta.cta_id()) * per_cta);
                const std::size_t hi = std::min(bytes, lo + per_cta);
                cta.charge_global(hi - lo);
                cta.charge_alu_uniform((hi - lo) / sizeof(std::uint64_t) + 1);
              })
      .modeled_ms;
}

double scrub_bytes(vgpu::Device& device, void* window, std::size_t bytes) {
  ++counters().scrubs;
  telemetry::metrics().counter("resilience.scrubs").add();
  // Zero-byte reservation: accounting and OOM behavior are untouched, but
  // the attached FaultInjector observes the ordinal and the live window —
  // this is where armed MPS_FAULT_BITFLIP_* faults land.
  vgpu::ScopedDeviceAlloc touch(device.memory(), 0, window, bytes);
  return charge_guard_scan(device, bytes);
}

}  // namespace mps::resilience
