#pragma once
// Integrity guards against silent data corruption (docs/robustness.md).
//
// The alloc-fault layer (vgpu/fault_injector.hpp) makes *loud* failures
// survivable; this module makes *silent* ones visible.  Three mechanisms,
// all raising mps::IntegrityError through integrity_failed():
//
//   * checksums — FNV-1a over raw buffer bytes.  BufferGuard records the
//     checksums of a set of buffers and re-verifies them later, detecting
//     any bit flip in data that should not have changed (kernel inputs
//     across a call, solver state across a scrub);
//   * scrub — registers a live buffer with the device memory model (a
//     zero-byte reservation carrying the host window), which is where
//     armed MPS_FAULT_BITFLIP_* faults land, and charges the cost model
//     for the read pass.  The scrub → verify pair is the deterministic
//     corruption surface the resilient solver and the corruption sweep
//     are built on;
//   * postcondition checks — device-charged scans asserting that kernel
//     outputs are structurally sane (monotone row offsets, in-range
//     column indices) and finite.  Kernels run them at exit only under
//     MPS_INTEGRITY_CHECK=1; with the knob off the guard is a single
//     predicted-untaken branch and the modeled time is bit-identical.
//
// SpmvPlan's pattern fingerprint and build-state checksum are instances
// of the same machinery (core/spmv_impl.hpp uses checksum_bytes).
//
// Counters (checksum failures detected, scrubs, checkpoint restores,
// plan rebuilds) accumulate process-wide so benchmark tables can report
// the recovery activity of a run (bench/suite_runners.cpp).

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/error.hpp"
#include "vgpu/device.hpp"

namespace mps::resilience {

/// True when MPS_INTEGRITY_CHECK is set to a nonzero value.  Read per
/// call (kernel launches dwarf a getenv), so tests can toggle it.
bool integrity_checks_enabled();

/// Process-wide recovery/detection counters.  Monotone; benches report
/// deltas across a run.
struct Counters {
  long long integrity_failures = 0;   ///< IntegrityError raised by guards
  long long scrubs = 0;               ///< buffers scrubbed through the device
  long long checkpoints = 0;          ///< solver checkpoints taken
  long long checkpoint_restores = 0;  ///< solver rollbacks to a checkpoint
  long long plan_rebuilds = 0;        ///< plans invalidated and rebuilt
};
Counters& counters();

/// Record the failure in counters() and throw IntegrityError.
[[noreturn]] void integrity_failed(const std::string& what);

// ---------------------------------------------------------------------------
// Checksums.

inline constexpr std::uint64_t kChecksumSeed = 1469598103934665603ull;

/// FNV-1a over raw bytes; chain calls through `seed` to cover multiple
/// buffers with one value.
std::uint64_t checksum_bytes(const void* data, std::size_t bytes,
                             std::uint64_t seed = kChecksumSeed);

template <typename T>
std::uint64_t checksum_span(std::span<const T> s,
                            std::uint64_t seed = kChecksumSeed) {
  return checksum_bytes(s.data(), s.size() * sizeof(T), seed);
}

/// Records checksums of a set of named buffers at construction points and
/// re-verifies them later; any drift raises IntegrityError naming the
/// first mismatched buffer.  Spans are held by reference semantics — the
/// guarded storage must outlive the guard and must not reallocate.
class BufferGuard {
 public:
  template <typename T>
  void add(const std::string& name, std::span<const T> s) {
    entries_.push_back({name, s.data(), s.size() * sizeof(T),
                        checksum_bytes(s.data(), s.size() * sizeof(T))});
  }

  /// Re-checksum every guarded buffer; throws IntegrityError on drift.
  void verify() const {
    for (const auto& e : entries_) {
      if (checksum_bytes(e.data, e.bytes) != e.sum) {
        integrity_failed("checksum mismatch in buffer '" + e.name +
                         "' (" + std::to_string(e.bytes) + " B)");
      }
    }
  }

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    const void* data;
    std::size_t bytes;
    std::uint64_t sum;
  };
  std::vector<Entry> entries_;
};

// ---------------------------------------------------------------------------
// Scrub: expose a live buffer to the fault layer + charge the read pass.

/// Registers `window` with the device memory model (zero-byte
/// reservation, so accounting and OOM behavior are untouched) — the
/// point where armed bit-flip faults land — and charges the cost model
/// for one streaming read of the buffer.  Returns modeled ms.
double scrub_bytes(vgpu::Device& device, void* window, std::size_t bytes);

template <typename T>
double scrub(vgpu::Device& device, std::span<T> s) {
  return scrub_bytes(device, s.data(), s.size() * sizeof(T));
}

// ---------------------------------------------------------------------------
// Device-charged postcondition checks.  Each returns modeled ms.

/// Charge the cost model for a guard scan over `bytes` (no data touched).
double charge_guard_scan(vgpu::Device& device, std::size_t bytes);

/// All values finite (no NaN/Inf); reports the first offending index.
template <typename V>
double check_finite(vgpu::Device& device, std::span<const V> vals,
                    const char* what) {
  const double ms = charge_guard_scan(device, vals.size() * sizeof(V));
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (!std::isfinite(vals[i])) {
      integrity_failed(std::string(what) + ": non-finite value at index " +
                       std::to_string(i));
    }
  }
  return ms;
}

/// CSR output postconditions: offsets present, starting at 0, monotone,
/// consistent with col/val sizes; columns in range; values finite.
template <typename V>
double check_csr(vgpu::Device& device, const sparse::CsrMatrix<V>& c,
                 const char* what) {
  const double ms = charge_guard_scan(device, c.device_bytes());
  const std::string w(what);
  if (c.row_offsets.size() != static_cast<std::size_t>(c.num_rows) + 1 ||
      (c.num_rows >= 0 && !c.row_offsets.empty() && c.row_offsets.front() != 0)) {
    integrity_failed(w + ": row offsets malformed");
  }
  for (std::size_t i = 1; i < c.row_offsets.size(); ++i) {
    if (c.row_offsets[i] < c.row_offsets[i - 1]) {
      integrity_failed(w + ": row_offsets[" + std::to_string(i) +
                       "] decreases (" + std::to_string(c.row_offsets[i]) +
                       " after " + std::to_string(c.row_offsets[i - 1]) + ")");
    }
  }
  if (c.col.size() != static_cast<std::size_t>(c.nnz()) ||
      c.val.size() != c.col.size()) {
    integrity_failed(w + ": col/val sizes disagree with nnz");
  }
  for (std::size_t k = 0; k < c.col.size(); ++k) {
    if (c.col[k] < 0 || c.col[k] >= c.num_cols) {
      integrity_failed(w + ": col[" + std::to_string(k) + "] = " +
                       std::to_string(c.col[k]) + " out of range [0, " +
                       std::to_string(c.num_cols) + ")");
    }
    if (!std::isfinite(c.val[k])) {
      integrity_failed(w + ": non-finite value at nonzero " + std::to_string(k));
    }
  }
  return ms;
}

/// COO output postconditions: indices in range, values finite.
template <typename V>
double check_coo(vgpu::Device& device, const sparse::CooMatrix<V>& c,
                 const char* what) {
  const double ms = charge_guard_scan(device, c.device_bytes());
  const std::string w(what);
  for (index_t i = 0; i < c.nnz(); ++i) {
    const auto k = static_cast<std::size_t>(i);
    if (c.row[k] < 0 || c.row[k] >= c.num_rows || c.col[k] < 0 ||
        c.col[k] >= c.num_cols) {
      integrity_failed(w + ": tuple " + std::to_string(i) + " = (" +
                       std::to_string(c.row[k]) + ", " +
                       std::to_string(c.col[k]) + ") out of range for " +
                       std::to_string(c.num_rows) + " x " +
                       std::to_string(c.num_cols));
    }
    if (!std::isfinite(c.val[k])) {
      integrity_failed(w + ": non-finite value at tuple " + std::to_string(i));
    }
  }
  return ms;
}

}  // namespace mps::resilience
