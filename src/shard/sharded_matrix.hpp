#pragma once
// shard::ShardedMatrix — a CSR matrix partitioned into nnz-balanced row
// blocks for multi-device execution (docs/sharding.md).
//
// Each shard owns a standalone local CSR: its row block with offsets
// rebased to zero and columns remapped onto the shard's *halo* — the
// sorted set of global columns its nonzeros actually touch.  The remap
// is monotone (ascending), so within every local row the nonzeros keep
// their global ascending-k order and their exact values; gathering
// x[xmap[l]] into a local input vector therefore hands the local kernel
// bit-for-bit the same multiplicands, in the same order, as the global
// kernel sees for those rows.  Since merge SpMV's output is bitwise
// equal to the sequential ascending-k per-row sum at ANY tile geometry
// (src/core/spmv_impl.hpp's update phase; pinned by tests/oracle.hpp),
// per-shard results concatenate into exactly the single-device answer —
// the determinism argument in docs/sharding.md.
//
// Optional 2D split (split_2d_nnz > 0): rows with at least that many
// nonzeros are extracted from their shard's local matrix and cut into
// one contiguous nonzero segment per shard.  Segment partials are
// reduced in fixed segment order, which is deterministic run-to-run but
// NOT bitwise-identical to the unsharded sum (the fp regrouping is
// real), which is why it defaults off and is gated behind an explicit
// knob (MPS_SHARD_2D_NNZ).

#include <cstddef>
#include <span>
#include <vector>

#include "shard/partition.hpp"
#include "sparse/csr.hpp"

namespace mps::shard {

/// One row-block shard: local CSR plus the halo gather map.
struct Shard {
  index_t row_begin = 0;
  index_t row_end = 0;
  int device = -1;  ///< fleet slot ordinal this shard is placed on
  double weight = 1.0;  ///< placement weight the cut was made with
  /// Rows rebased to [0, row_end - row_begin); columns remapped onto the
  /// halo (num_cols == xmap.size()).
  sparse::CsrD local;
  /// Monotone halo map: local column l corresponds to global column
  /// xmap[l].  The modeled halo exchange transfers exactly these
  /// entries of x to the shard's device.
  std::vector<index_t> xmap;
};

/// One column segment of a 2D-split dense row, with its own copy of the
/// segment's nonzeros (ascending global k order preserved).
struct DenseRowSegment {
  int device = -1;
  std::vector<index_t> col;
  std::vector<double> val;
};

/// A dense row extracted for 2D execution: the fixed, ascending-k
/// segment list whose partials are reduced in index order.
struct DenseRow {
  index_t row = 0;
  std::vector<DenseRowSegment> segments;
};

struct ShardOptions {
  /// Rows with >= this many nonzeros split by column (0 = off).
  long long split_2d_nnz = 0;
};

class ShardedMatrix {
 public:
  using Options = ShardOptions;

  /// Partition `a` into device_ordinals.size() row blocks with diagonal
  /// spans proportional to `weights` (partition_rows), building each
  /// shard's local CSR and halo map.  Deterministic: a pure function of
  /// (a, ordinals, weights, options).
  ShardedMatrix(const sparse::CsrD& a, std::span<const int> device_ordinals,
                std::span<const double> weights, const Options& options = {});

  index_t num_rows() const { return num_rows_; }
  index_t num_cols() const { return num_cols_; }
  const std::vector<Shard>& shards() const { return shards_; }
  const std::vector<DenseRow>& dense_rows() const { return dense_rows_; }

  /// Bytes of x the halo exchange moves for one SpMV (sum of every
  /// shard's |xmap| doubles).  >= num_cols * 8 only when rows overlap in
  /// column support across shards.
  std::size_t halo_bytes() const;

 private:
  index_t num_rows_ = 0;
  index_t num_cols_ = 0;
  std::vector<Shard> shards_;
  std::vector<DenseRow> dense_rows_;
};

}  // namespace mps::shard
