#pragma once
// Distributed execution over a ShardedMatrix (docs/sharding.md).
//
// Every entry point follows the same scatter/compute/gather shape: the
// dense input is gathered per shard through its halo map (the modeled
// halo exchange, charged at the receiving device's global bandwidth),
// each shard's kernel runs on its placed device, and the disjoint output
// row ranges land directly in the caller's buffer — no reduction step,
// so the gather order cannot perturb the result.  SpMV/SpMM outputs are
// bitwise identical to single-device execution (the monotone-remap
// argument in sharded_matrix.hpp); SpAdd row-slices both inputs so each
// output row is produced by exactly one device's kernel; SpGEMM passes
// each slice's global product prefix as SpgemmConfig::product_origin —
// the spgemm_chunked mechanism — so CTA tile boundaries, partial-sum
// grouping, and therefore every floating-point sum match the flat path
// bit for bit.
//
// Shards run sequentially on the calling thread (CTA-level parallelism
// already fans out through the device's pool); ExecStats::modeled_ms
// models the *fleet* running concurrently: the busiest device's total.
//
// `devices` is indexed by fleet slot ordinal — shard.device and
// DenseRowSegment::device select into it.  A kernel-level device loss
// surfaces as ShardLostError carrying that ordinal, so the serving layer
// can quarantine just the lost device and re-place its shards.

#include <memory>
#include <span>
#include <string>

#include "autotune/autotune.hpp"
#include "core/spmv.hpp"
#include "shard/sharded_matrix.hpp"
#include "sparse/csr.hpp"
#include "vgpu/chaos.hpp"
#include "vgpu/device.hpp"

namespace mps::shard {

/// Device loss attributed to a shard's fleet slot: the serving engine
/// quarantines device_ordinal() and re-places only the shards on it.
class ShardLostError : public vgpu::DeviceLostError {
 public:
  ShardLostError(const std::string& what, int device_ordinal)
      : vgpu::DeviceLostError(what), device_ordinal_(device_ordinal) {}
  int device_ordinal() const { return device_ordinal_; }

 private:
  int device_ordinal_;
};

struct ExecStats {
  /// Busiest device's kernel + halo time: the fleet-concurrent model the
  /// serving engine and the scaling bench report.
  double modeled_ms = 0.0;
  /// Total modeled halo-exchange time across shards.
  double halo_ms = 0.0;
  /// Serial sum of all per-shard kernel time (the 1-device equivalent
  /// work; sum_ms / modeled_ms is the modeled speedup).
  double sum_ms = 0.0;
  int shards = 0;
};

/// y = A x across the fleet.  Bitwise identical to single-device merge
/// SpMV for the 1D row shards; 2D-split dense rows (if any) reduce in
/// fixed segment order (deterministic, not bitwise — see
/// sharded_matrix.hpp).
ExecStats spmv(const ShardedMatrix& sm, std::span<vgpu::Device* const> devices,
               std::span<const double> x, std::span<double> y);

/// Plan-reuse variant: plans[i] drives shards()[i] (null entries fall
/// back to one-shot).  Bit-identical to spmv() above.
ExecStats spmv_execute(
    const ShardedMatrix& sm, std::span<vgpu::Device* const> devices,
    std::span<const std::shared_ptr<const core::merge::SpmvPlan>> plans,
    std::span<const double> x, std::span<double> y);

/// Autotuned variant: tuned[i] drives shards()[i] (null entries fall
/// back to one-shot merge).  Bitwise only when every tuned plan's format
/// is bitwise-faithful to merge — the engine keys tuned plans per shard,
/// so the autotuner's own oracle gates apply per shard unchanged.
ExecStats spmv_tuned(
    const ShardedMatrix& sm, std::span<vgpu::Device* const> devices,
    std::span<const std::shared_ptr<const autotune::TunedPlan>> tuned,
    std::span<const double> x, std::span<double> y);

/// Y = A X, row-major block of num_vectors right-hand sides.  Halo bytes
/// scale by num_vectors (each halo column drags the whole row of X).
ExecStats spmm(const ShardedMatrix& sm, std::span<vgpu::Device* const> devices,
               std::span<const double> x_block, index_t num_vectors,
               std::span<double> y_block);

/// C = A + B, row-partitioned on the *combined* staircase (a's plus b's
/// row offsets) so a row dense in either input still balances.  Slice i
/// runs on devices[ordinals[i]] with diagonal span proportional to
/// weights[i].  Both slices keep original column ids (sparse::row_slice);
/// per-slice outputs concatenate row-wise into C.  Bitwise: each output
/// entry is one copy or one a+b add, never regrouped.
ExecStats spadd(const sparse::CsrD& a, const sparse::CsrD& b,
                std::span<vgpu::Device* const> devices,
                std::span<const int> ordinals, std::span<const double> weights,
                sparse::CsrD& c);

/// C = A B, row-partitioned on the intermediate-product staircase.  Each
/// slice multiplies against a full replica of B (replication for shards
/// past the first is the modeled halo cost) with product_origin set to
/// the slice's global product prefix, so the stitched C is bitwise
/// identical to flat spgemm — the spgemm_chunked argument verbatim.
ExecStats spgemm(const sparse::CsrD& a, const sparse::CsrD& b,
                 std::span<vgpu::Device* const> devices,
                 std::span<const int> ordinals, std::span<const double> weights,
                 sparse::CsrD& c);

}  // namespace mps::shard
