#include "shard/partition.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mps::shard {

namespace {

/// Rows consumed by the first `diag` steps of merging row-end offsets
/// (A = offsets[1..rows]) with nonzero ordinals (B = 0..nnz-1, implicit).
/// Same search and A-first tie convention as primitives::merge_path.
index_t diagonal_row(std::span<const index_t> offsets, long long diag) {
  const long long rows = static_cast<long long>(offsets.size()) - 1;
  const long long nnz = static_cast<long long>(offsets[offsets.size() - 1]);
  long long lo = std::max(0ll, diag - nnz);
  long long hi = std::min(diag, rows);
  while (lo < hi) {
    const long long ai = lo + (hi - lo) / 2;
    const long long bi = diag - ai - 1;  // b[bi] == bi (counting sequence)
    if (!(bi < static_cast<long long>(offsets[static_cast<std::size_t>(ai) + 1]))) {
      lo = ai + 1;
    } else {
      hi = ai;
    }
  }
  return static_cast<index_t>(lo);
}

}  // namespace

std::vector<RowBlock> partition_rows(std::span<const index_t> row_end_offsets,
                                     std::span<const double> weights) {
  MPS_CHECK(!row_end_offsets.empty());
  MPS_CHECK(!weights.empty());
  double total_weight = 0.0;
  for (const double w : weights) {
    if (!(w > 0.0)) {
      throw InvalidInputError("partition_rows: weights must be positive");
    }
    total_weight += w;
  }
  const long long rows = static_cast<long long>(row_end_offsets.size()) - 1;
  const long long nnz =
      static_cast<long long>(row_end_offsets[row_end_offsets.size() - 1]);
  const long long total_diag = rows + nnz;

  std::vector<RowBlock> blocks;
  blocks.reserve(weights.size());
  index_t prev_row = 0;
  double prefix = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    prefix += weights[i];
    index_t row_end;
    if (i + 1 == weights.size()) {
      row_end = static_cast<index_t>(rows);  // exact, no fp residue
    } else {
      const long long diag = std::min(
          total_diag,
          static_cast<long long>(std::llround(
              prefix / total_weight * static_cast<double>(total_diag))));
      row_end = std::max(prev_row, diagonal_row(row_end_offsets, diag));
    }
    RowBlock b;
    b.row_begin = prev_row;
    b.row_end = row_end;
    b.nnz = static_cast<long long>(
                row_end_offsets[static_cast<std::size_t>(row_end)]) -
            static_cast<long long>(
                row_end_offsets[static_cast<std::size_t>(prev_row)]);
    blocks.push_back(b);
    prev_row = row_end;
  }
  return blocks;
}

std::vector<RowBlock> partition_rows(std::span<const index_t> row_end_offsets,
                                     int num_blocks) {
  MPS_CHECK(num_blocks > 0);
  const std::vector<double> weights(static_cast<std::size_t>(num_blocks), 1.0);
  return partition_rows(row_end_offsets, weights);
}

}  // namespace mps::shard
