#include "shard/exec.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/spadd.hpp"
#include "core/spgemm.hpp"
#include "core/spmm.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/span.hpp"
#include "util/common.hpp"

namespace mps::shard {

namespace {

/// Modeled time to move `bytes` through the receiving device's global
/// memory system — the same bandwidth model kernel cost charges use.
double transfer_ms(const vgpu::DeviceProperties& props, double bytes) {
  const double bytes_per_cycle =
      static_cast<double>(props.num_sms) * props.global_bytes_per_cycle_per_sm;
  return props.cycles_to_ms(bytes / bytes_per_cycle);
}

vgpu::Device& device_for(std::span<vgpu::Device* const> devices, int ordinal) {
  MPS_CHECK(ordinal >= 0 &&
            static_cast<std::size_t>(ordinal) < devices.size());
  MPS_CHECK(devices[static_cast<std::size_t>(ordinal)] != nullptr);
  return *devices[static_cast<std::size_t>(ordinal)];
}

[[noreturn]] void rethrow_as_shard_loss(const vgpu::DeviceLostError& e,
                                        int ordinal) {
  throw ShardLostError(std::string("shard on device ") +
                           std::to_string(ordinal) + ": " + e.what(),
                       ordinal);
}

/// Fold per-device busy times into the fleet-concurrent stats.
ExecStats finish(const std::vector<double>& busy, double halo_ms,
                 double sum_ms, int shards) {
  ExecStats st;
  st.modeled_ms = busy.empty() ? 0.0 : *std::max_element(busy.begin(), busy.end());
  st.halo_ms = halo_ms;
  st.sum_ms = sum_ms;
  st.shards = shards;
  return st;
}

/// Shared scatter/compute/gather skeleton for the SpMV-shaped entry
/// points.  `kernel(i, device, shard, sub_x, y_sub)` returns modeled ms.
template <typename Kernel>
ExecStats run_rowwise(const ShardedMatrix& sm,
                      std::span<vgpu::Device* const> devices,
                      std::span<const double> x, std::span<double> y,
                      index_t vec_stride, Kernel&& kernel) {
  MPS_CHECK(x.size() == static_cast<std::size_t>(sm.num_cols()) *
                            static_cast<std::size_t>(vec_stride));
  MPS_CHECK(y.size() == static_cast<std::size_t>(sm.num_rows()) *
                            static_cast<std::size_t>(vec_stride));
  std::vector<double> busy(devices.size(), 0.0);
  double halo_ms = 0.0;
  double sum_ms = 0.0;
  // Roofline attribution: per-shard samples feed the imbalance detector
  // after the loop.  Everything profiler-related is guarded on enabled()
  // so the disabled path stays one relaxed atomic load.
  const bool prof = telemetry::profiler().enabled();
  std::vector<telemetry::ShardSample> samples;
  std::vector<double> sub_x;
  for (std::size_t i = 0; i < sm.shards().size(); ++i) {
    const Shard& s = sm.shards()[i];
    const index_t rows = s.row_end - s.row_begin;
    if (rows == 0) continue;
    std::span<double> y_sub =
        y.subspan(static_cast<std::size_t>(s.row_begin) *
                      static_cast<std::size_t>(vec_stride),
                  static_cast<std::size_t>(rows) *
                      static_cast<std::size_t>(vec_stride));
    if (s.local.nnz() == 0) {
      // The merge kernel writes +0.0 for every empty row; skip the
      // launch and write them directly (bitwise the same).
      std::fill(y_sub.begin(), y_sub.end(), 0.0);
      continue;
    }
    vgpu::Device& dev = device_for(devices, s.device);
    // Halo exchange: gather exactly the x entries this shard touches.
    sub_x.resize(s.xmap.size() * static_cast<std::size_t>(vec_stride));
    for (std::size_t l = 0; l < s.xmap.size(); ++l) {
      for (index_t j = 0; j < vec_stride; ++j) {
        sub_x[l * static_cast<std::size_t>(vec_stride) +
              static_cast<std::size_t>(j)] =
            x[static_cast<std::size_t>(s.xmap[l]) *
                  static_cast<std::size_t>(vec_stride) +
              static_cast<std::size_t>(j)];
      }
    }
    const double h = transfer_ms(
        dev.props(), static_cast<double>(sub_x.size()) * sizeof(double));
    double kernel_ms = 0.0;
    try {
      telemetry::ScopedSpan span("shard.spmv");
      if (prof) {
        telemetry::ProfAttr attr = telemetry::current_prof_attr();
        attr.shard = static_cast<int>(i);
        attr.device = s.device;
        attr.phase = "shard.spmv";
        telemetry::ProfAttrScope scope(attr);
        kernel_ms = kernel(i, dev, s, std::span<const double>(sub_x), y_sub);
      } else {
        kernel_ms = kernel(i, dev, s, std::span<const double>(sub_x), y_sub);
      }
    } catch (const vgpu::DeviceLostError& e) {
      rethrow_as_shard_loss(e, s.device);
    }
    busy[static_cast<std::size_t>(s.device)] += h + kernel_ms;
    halo_ms += h;
    sum_ms += kernel_ms;
    if (prof) samples.push_back({i, s.device, h + kernel_ms});
  }
  if (prof && !samples.empty()) {
    telemetry::profiler().note_shard_batch(
        telemetry::current_prof_attr().tenant, samples);
  }
  // 2D-split dense rows: per-segment partials on each segment's device,
  // reduced in fixed segment order (deterministic, not bitwise).
  for (const DenseRow& dr : sm.dense_rows()) {
    double total = 0.0;
    for (index_t j = 0; j < vec_stride; ++j) {
      total = 0.0;
      for (const DenseRowSegment& seg : dr.segments) {
        double partial = 0.0;
        for (std::size_t k = 0; k < seg.col.size(); ++k) {
          partial += seg.val[k] *
                     x[static_cast<std::size_t>(seg.col[k]) *
                           static_cast<std::size_t>(vec_stride) +
                       static_cast<std::size_t>(j)];
        }
        total += partial;
        if (j == 0) {
          vgpu::Device& dev = device_for(devices, seg.device);
          // Streaming cost: col + val + gathered x per nonzero, all
          // vectors.
          const double bytes =
              static_cast<double>(seg.col.size()) *
              (sizeof(index_t) +
               static_cast<double>(vec_stride) * 2.0 * sizeof(double));
          const double ms = transfer_ms(dev.props(), bytes);
          busy[static_cast<std::size_t>(seg.device)] += ms;
          sum_ms += ms;
        }
      }
      y[static_cast<std::size_t>(dr.row) *
            static_cast<std::size_t>(vec_stride) +
        static_cast<std::size_t>(j)] = total;
    }
  }
  return finish(busy, halo_ms, sum_ms,
                static_cast<int>(sm.shards().size()));
}

/// Concatenate `sub`'s rows onto `c` (columns already global).
void append_rows(sparse::CsrD& c, const sparse::CsrD& sub) {
  const index_t base = c.nnz();
  for (index_t r = 0; r < sub.num_rows; ++r) {
    c.row_offsets.push_back(base +
                            sub.row_offsets[static_cast<std::size_t>(r) + 1]);
  }
  c.num_rows += sub.num_rows;
  c.col.insert(c.col.end(), sub.col.begin(), sub.col.end());
  c.val.insert(c.val.end(), sub.val.begin(), sub.val.end());
}

}  // namespace

ExecStats spmv(const ShardedMatrix& sm, std::span<vgpu::Device* const> devices,
               std::span<const double> x, std::span<double> y) {
  return run_rowwise(sm, devices, x, y, 1,
                     [](std::size_t, vgpu::Device& dev, const Shard& s,
                        std::span<const double> sub_x, std::span<double> y_sub) {
                       return core::merge::spmv(dev, s.local, sub_x, y_sub)
                           .modeled_ms();
                     });
}

ExecStats spmv_execute(
    const ShardedMatrix& sm, std::span<vgpu::Device* const> devices,
    std::span<const std::shared_ptr<const core::merge::SpmvPlan>> plans,
    std::span<const double> x, std::span<double> y) {
  MPS_CHECK(plans.size() == sm.shards().size());
  return run_rowwise(
      sm, devices, x, y, 1,
      [&](std::size_t i, vgpu::Device& dev, const Shard& s,
          std::span<const double> sub_x, std::span<double> y_sub) {
        if (!plans[i]) {
          return core::merge::spmv(dev, s.local, sub_x, y_sub).modeled_ms();
        }
        return core::merge::spmv_execute(dev, s.local, sub_x, y_sub, *plans[i])
            .modeled_ms();
      });
}

ExecStats spmv_tuned(
    const ShardedMatrix& sm, std::span<vgpu::Device* const> devices,
    std::span<const std::shared_ptr<const autotune::TunedPlan>> tuned,
    std::span<const double> x, std::span<double> y) {
  MPS_CHECK(tuned.size() == sm.shards().size());
  return run_rowwise(
      sm, devices, x, y, 1,
      [&](std::size_t i, vgpu::Device& dev, const Shard& s,
          std::span<const double> sub_x, std::span<double> y_sub) {
        if (!tuned[i]) {
          return core::merge::spmv(dev, s.local, sub_x, y_sub).modeled_ms();
        }
        return tuned[i]->execute(dev, s.local, sub_x, y_sub).modeled_ms();
      });
}

ExecStats spmm(const ShardedMatrix& sm, std::span<vgpu::Device* const> devices,
               std::span<const double> x_block, index_t num_vectors,
               std::span<double> y_block) {
  MPS_CHECK(num_vectors > 0);
  return run_rowwise(sm, devices, x_block, y_block, num_vectors,
                     [num_vectors](std::size_t, vgpu::Device& dev,
                                   const Shard& s,
                                   std::span<const double> sub_x,
                                   std::span<double> y_sub) {
                       return core::merge::spmm(dev, s.local, sub_x,
                                                num_vectors, y_sub)
                           .modeled_ms;
                     });
}

ExecStats spadd(const sparse::CsrD& a, const sparse::CsrD& b,
                std::span<vgpu::Device* const> devices,
                std::span<const int> ordinals, std::span<const double> weights,
                sparse::CsrD& c) {
  MPS_CHECK(a.num_rows == b.num_rows && a.num_cols == b.num_cols);
  MPS_CHECK(!weights.empty() && weights.size() == ordinals.size());
  // Combined staircase: a row heavy in either input still balances.
  std::vector<index_t> combined(static_cast<std::size_t>(a.num_rows) + 1);
  for (std::size_t r = 0; r < combined.size(); ++r) {
    combined[r] = a.row_offsets[r] + b.row_offsets[r];
  }
  const auto blocks = partition_rows(combined, weights);

  sparse::CsrD out(0, a.num_cols);
  std::vector<double> busy(devices.size(), 0.0);
  double sum_ms = 0.0;
  const bool prof = telemetry::profiler().enabled();
  std::vector<telemetry::ShardSample> samples;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const RowBlock& blk = blocks[i];
    if (blk.row_end == blk.row_begin) {
      continue;
    }
    vgpu::Device& dev = device_for(devices, ordinals[i]);
    const sparse::CsrD sub_a = sparse::row_slice(a, blk.row_begin, blk.row_end);
    const sparse::CsrD sub_b = sparse::row_slice(b, blk.row_begin, blk.row_end);
    sparse::CsrD sub_c;
    double ms = 0.0;
    try {
      telemetry::ScopedSpan span("shard.spadd");
      if (prof) {
        telemetry::ProfAttr attr = telemetry::current_prof_attr();
        attr.shard = static_cast<int>(i);
        attr.device = ordinals[i];
        attr.phase = "shard.spadd";
        telemetry::ProfAttrScope scope(attr);
        ms = core::merge::spadd_csr(dev, sub_a, sub_b, sub_c).modeled_ms;
      } else {
        ms = core::merge::spadd_csr(dev, sub_a, sub_b, sub_c).modeled_ms;
      }
    } catch (const vgpu::DeviceLostError& e) {
      rethrow_as_shard_loss(e, ordinals[i]);
    }
    append_rows(out, sub_c);
    busy[static_cast<std::size_t>(ordinals[i])] += ms;
    sum_ms += ms;
    if (prof) samples.push_back({i, ordinals[i], ms});
  }
  if (prof && !samples.empty()) {
    telemetry::profiler().note_shard_batch(
        telemetry::current_prof_attr().tenant, samples);
  }
  // Pad trailing empty blocks' rows (blocks cover all rows by
  // construction, so out.num_rows == a.num_rows already unless the
  // matrix itself has zero rows).
  while (out.num_rows < a.num_rows) {
    out.row_offsets.push_back(out.nnz());
    ++out.num_rows;
  }
  c = std::move(out);
  return finish(busy, 0.0, sum_ms, static_cast<int>(blocks.size()));
}

ExecStats spgemm(const sparse::CsrD& a, const sparse::CsrD& b,
                 std::span<vgpu::Device* const> devices,
                 std::span<const int> ordinals, std::span<const double> weights,
                 sparse::CsrD& c) {
  MPS_CHECK(a.num_cols == b.num_rows);
  MPS_CHECK(!weights.empty() && weights.size() == ordinals.size());
  // Intermediate-product staircase: P[r] = products emitted before row r.
  std::vector<long long> prods(static_cast<std::size_t>(a.num_rows) + 1, 0);
  for (index_t r = 0; r < a.num_rows; ++r) {
    long long row_prods = 0;
    for (index_t k = a.row_offsets[static_cast<std::size_t>(r)];
         k < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      row_prods += b.row_length(a.col[static_cast<std::size_t>(k)]);
    }
    prods[static_cast<std::size_t>(r) + 1] =
        prods[static_cast<std::size_t>(r)] + row_prods;
  }
  MPS_CHECK_MSG(prods.back() <= static_cast<long long>(
                                    std::numeric_limits<index_t>::max()),
                "sharded spgemm: product count exceeds index range");
  std::vector<index_t> pi(prods.size());
  for (std::size_t r = 0; r < prods.size(); ++r) {
    pi[r] = static_cast<index_t>(prods[r]);
  }
  const auto blocks = partition_rows(pi, weights);

  sparse::CsrD out(0, b.num_cols);
  std::vector<double> busy(devices.size(), 0.0);
  double halo_ms = 0.0;
  double sum_ms = 0.0;
  const bool prof = telemetry::profiler().enabled();
  std::vector<telemetry::ShardSample> samples;
  bool first_active = true;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const RowBlock& blk = blocks[i];
    if (blk.row_end == blk.row_begin) {
      continue;
    }
    vgpu::Device& dev = device_for(devices, ordinals[i]);
    // Every shard past the first needs its own replica of B — the
    // dominant halo cost of sharded SpGEMM.
    double shard_halo = 0.0;
    if (!first_active) {
      const double h =
          transfer_ms(dev.props(), static_cast<double>(b.device_bytes()));
      busy[static_cast<std::size_t>(ordinals[i])] += h;
      halo_ms += h;
      shard_halo = h;
    }
    first_active = false;
    const sparse::CsrD sub_a = sparse::row_slice(a, blk.row_begin, blk.row_end);
    core::merge::SpgemmConfig cfg;
    cfg.product_origin = static_cast<std::uint64_t>(
        prods[static_cast<std::size_t>(blk.row_begin)]);
    sparse::CsrD sub_c;
    double ms = 0.0;
    try {
      telemetry::ScopedSpan span("shard.spgemm");
      if (prof) {
        telemetry::ProfAttr attr = telemetry::current_prof_attr();
        attr.shard = static_cast<int>(i);
        attr.device = ordinals[i];
        attr.phase = "shard.spgemm";
        telemetry::ProfAttrScope scope(attr);
        ms = core::merge::spgemm(dev, sub_a, b, sub_c, cfg).modeled_ms();
      } else {
        ms = core::merge::spgemm(dev, sub_a, b, sub_c, cfg).modeled_ms();
      }
    } catch (const vgpu::DeviceLostError& e) {
      rethrow_as_shard_loss(e, ordinals[i]);
    }
    append_rows(out, sub_c);
    busy[static_cast<std::size_t>(ordinals[i])] += ms;
    sum_ms += ms;
    if (prof) samples.push_back({i, ordinals[i], shard_halo + ms});
  }
  if (prof && !samples.empty()) {
    telemetry::profiler().note_shard_batch(
        telemetry::current_prof_attr().tenant, samples);
  }
  while (out.num_rows < a.num_rows) {
    out.row_offsets.push_back(out.nnz());
    ++out.num_rows;
  }
  c = std::move(out);
  ExecStats st = finish(busy, halo_ms, sum_ms, static_cast<int>(blocks.size()));
  return st;
}

}  // namespace mps::shard
