#pragma once
// Weighted nnz-balanced row partitioning for sharded execution
// (docs/sharding.md).
//
// Splitting a CSR matrix into row blocks of equal *row count* recreates
// exactly the pathology the paper's merge-path decomposition exists to
// kill: one dense row makes one shard the straggler.  So shards are cut
// the way merge SpMV cuts CTAs — on the (rows x nnz) merge staircase,
// where a diagonal position d accounts for every row boundary AND every
// nonzero crossed so far.  Equal diagonal spans mean equal rows+nnz work
// regardless of how the nonzeros are distributed; a device with twice
// the modeled bandwidth gets a diagonal span twice as long (weighted
// cuts), which equalizes per-shard *time* across a heterogeneous fleet.
//
// The diagonal search is the same binary search as
// primitives/merge_path.hpp with the B sequence (the natural numbers
// 0..nnz-1) left implicit — cutting at diag d finds the row r such that
// merging row-end offsets with nonzero ordinals consumes exactly r row
// boundaries in the first d steps.

#include <span>
#include <vector>

#include "util/common.hpp"

namespace mps::shard {

struct RowBlock {
  index_t row_begin = 0;
  index_t row_end = 0;  ///< exclusive; row_begin == row_end is an empty shard
  long long nnz = 0;    ///< nonzeros covered by the block
};

/// Cut the staircase of `row_end_offsets` (size num_rows + 1, offsets[0]
/// == 0, offsets[num_rows] == total work units) into weights.size()
/// blocks whose diagonal spans are proportional to `weights`.  Weights
/// must be positive; empty blocks are legal output (more shards than
/// rows, or a tiny weight).  Deterministic: a pure function of the
/// offsets and weights.
std::vector<RowBlock> partition_rows(std::span<const index_t> row_end_offsets,
                                     std::span<const double> weights);

/// Uniform-weight convenience: num_blocks equal diagonal spans.
std::vector<RowBlock> partition_rows(std::span<const index_t> row_end_offsets,
                                     int num_blocks);

}  // namespace mps::shard
