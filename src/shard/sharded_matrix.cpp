#include "shard/sharded_matrix.hpp"

#include <algorithm>

#include "util/common.hpp"

namespace mps::shard {

ShardedMatrix::ShardedMatrix(const sparse::CsrD& a,
                             std::span<const int> device_ordinals,
                             std::span<const double> weights,
                             const Options& options)
    : num_rows_(a.num_rows), num_cols_(a.num_cols) {
  MPS_CHECK(!device_ordinals.empty());
  MPS_CHECK(device_ordinals.size() == weights.size());
  const auto blocks = partition_rows(a.row_offsets, weights);

  // 2D extraction first: a dense row's nonzeros leave its shard's local
  // matrix entirely and come back as fixed-order column segments spread
  // over every shard's device.
  std::vector<char> is_dense(static_cast<std::size_t>(a.num_rows), 0);
  if (options.split_2d_nnz > 0) {
    for (index_t r = 0; r < a.num_rows; ++r) {
      if (static_cast<long long>(a.row_length(r)) < options.split_2d_nnz) {
        continue;
      }
      is_dense[static_cast<std::size_t>(r)] = 1;
      DenseRow dense;
      dense.row = r;
      const index_t k0 = a.row_offsets[static_cast<std::size_t>(r)];
      const index_t k1 = a.row_offsets[static_cast<std::size_t>(r) + 1];
      const index_t len = k1 - k0;
      const index_t parts = static_cast<index_t>(device_ordinals.size());
      const index_t chunk = ceil_div(len, parts);
      for (index_t p = 0; p < parts; ++p) {
        const index_t s0 = k0 + std::min(len, p * chunk);
        const index_t s1 = k0 + std::min(len, (p + 1) * chunk);
        if (s0 >= s1) break;
        DenseRowSegment seg;
        seg.device = device_ordinals[static_cast<std::size_t>(p)];
        seg.col.assign(a.col.begin() + s0, a.col.begin() + s1);
        seg.val.assign(a.val.begin() + s0, a.val.begin() + s1);
        dense.segments.push_back(std::move(seg));
      }
      dense_rows_.push_back(std::move(dense));
    }
  }

  shards_.reserve(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    Shard shard;
    shard.row_begin = blocks[i].row_begin;
    shard.row_end = blocks[i].row_end;
    shard.device = device_ordinals[i];
    shard.weight = weights[i];

    // Halo: the sorted unique global columns this shard's nonzeros touch.
    std::vector<index_t>& xmap = shard.xmap;
    for (index_t r = shard.row_begin; r < shard.row_end; ++r) {
      if (is_dense[static_cast<std::size_t>(r)]) continue;
      const index_t k0 = a.row_offsets[static_cast<std::size_t>(r)];
      const index_t k1 = a.row_offsets[static_cast<std::size_t>(r) + 1];
      xmap.insert(xmap.end(), a.col.begin() + k0, a.col.begin() + k1);
    }
    std::sort(xmap.begin(), xmap.end());
    xmap.erase(std::unique(xmap.begin(), xmap.end()), xmap.end());

    // Local CSR: rebased rows, columns remapped through the monotone
    // halo map (ascending per row is preserved, so is_valid holds).
    sparse::CsrD& local = shard.local;
    local.num_rows = shard.row_end - shard.row_begin;
    local.num_cols = static_cast<index_t>(xmap.size());
    local.row_offsets.assign(static_cast<std::size_t>(local.num_rows) + 1, 0);
    index_t filled = 0;
    for (index_t r = shard.row_begin; r < shard.row_end; ++r) {
      if (!is_dense[static_cast<std::size_t>(r)]) {
        const index_t k0 = a.row_offsets[static_cast<std::size_t>(r)];
        const index_t k1 = a.row_offsets[static_cast<std::size_t>(r) + 1];
        for (index_t k = k0; k < k1; ++k) {
          const auto it = std::lower_bound(xmap.begin(), xmap.end(),
                                           a.col[static_cast<std::size_t>(k)]);
          local.col.push_back(static_cast<index_t>(it - xmap.begin()));
          local.val.push_back(a.val[static_cast<std::size_t>(k)]);
          ++filled;
        }
      }
      local.row_offsets[static_cast<std::size_t>(r - shard.row_begin) + 1] =
          filled;
    }
    shards_.push_back(std::move(shard));
  }
}

std::size_t ShardedMatrix::halo_bytes() const {
  std::size_t bytes = 0;
  for (const Shard& s : shards_) bytes += s.xmap.size() * sizeof(double);
  return bytes;
}

}  // namespace mps::shard
