#!/usr/bin/env python3
"""Plot the reproduction's figures from the benches' CSV output.

Usage:
    mkdir -p out && MPS_CSV_DIR=$PWD/out sh -c 'for b in build/bench/*; do $b; done'
    python3 scripts/plot_figures.py out

Writes one PNG per figure CSV into the same directory.  Degrades to a
text summary when matplotlib is unavailable (this repository's benches
already print publication-style tables; the plots are a convenience).
"""
import csv
import sys
from pathlib import Path


def read_csv(path: Path):
    with path.open() as f:
        rows = list(csv.reader(f))
    return rows[0], rows[1:]


def parse_float(cell: str):
    cell = cell.replace(" ", "").replace("x", "").replace("%", "")
    try:
        return float(cell)
    except ValueError:
        return None


def bar_figure(plt, header, rows, out_path, title):
    labels = [r[0] for r in rows]
    series = []
    for col in range(1, len(header)):
        vals = [parse_float(r[col]) for r in rows]
        if all(v is not None for v in vals):
            series.append((header[col], vals))
    if not series:
        return False
    width = 0.8 / len(series)
    fig, ax = plt.subplots(figsize=(max(8, len(labels)), 4))
    for i, (name, vals) in enumerate(series):
        ax.bar([x + i * width for x in range(len(labels))], vals, width, label=name)
    ax.set_xticks([x + 0.4 for x in range(len(labels))])
    ax.set_xticklabels(labels, rotation=45, ha="right")
    ax.set_title(title)
    ax.legend()
    fig.tight_layout()
    fig.savefig(out_path, dpi=120)
    return True


def scatter_figure(plt, header, rows, out_path, title):
    xs = [parse_float(r[1]) for r in rows]
    fig, ax = plt.subplots(figsize=(6, 4))
    for col in range(2, len(header)):
        ys = [parse_float(r[col]) for r in rows]
        pts = [(x, y) for x, y in zip(xs, ys) if x is not None and y is not None]
        if pts:
            ax.scatter([p[0] for p in pts], [p[1] for p in pts], label=header[col])
    ax.set_xlabel(header[1])
    ax.set_ylabel("modeled ms")
    ax.set_title(title)
    ax.legend()
    fig.tight_layout()
    fig.savefig(out_path, dpi=120)
    return True


def main():
    csv_dir = Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    files = sorted(csv_dir.glob("*.csv"))
    if not files:
        print(f"no CSVs in {csv_dir}; run the benches with MPS_CSV_DIR set")
        return 1
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib unavailable; text summary only:")
        for f in files:
            header, rows = read_csv(f)
            print(f"  {f.name}: {len(rows)} rows, columns: {', '.join(header)}")
        return 0
    for f in files:
        header, rows = read_csv(f)
        out = f.with_suffix(".png")
        ok = (
            scatter_figure(plt, header, rows, out, f.stem)
            if "corr" in f.stem
            else bar_figure(plt, header, rows, out, f.stem)
        )
        print(f"  {f.name} -> {out.name}" if ok else f"  {f.name}: skipped (non-numeric)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
