#!/usr/bin/env bash
# Kill-and-recover sweep for the durable serving engine (docs/robustness.md).
#
# For each scripted kill point the harness runs mps_serve with a durable
# directory and an armed crash (--crash-point P:N), expects the process to
# die with the injection exit code (43), restarts it against the same
# directory, and fails unless
#   (a) recovery succeeds (exit 0 and a "durable recovery:" line),
#   (b) every acked registration survives ("manifest: N/N acked
#       registrations recovered" — the manifest line is written *before*
#       the post-ack crash hook fires, so an acked-but-lost registration
#       is detectable), and
#   (c) the recovered run's per-request result hashes are bitwise
#       identical to an uninterrupted reference run (cmp on --hash-out),
#   (d) the injected crash left a flight-recorder debug bundle behind
#       (the crash hook dumps before _exit when MPS_FLIGHT_DIR is set),
#       proving the always-on recorder is live on the dying path.
#
# --sigkill adds an external sweep: background runs killed with SIGKILL at
# staggered delays, then recovered and verified the same way (hash compare
# is skipped for a run that happened to finish before the kill landed).
#
# usage: scripts/crash_matrix.sh [--bin PATH] [--out DIR] [--sigkill]
#   --bin PATH   mps_serve binary (default build/tools/mps_serve,
#                or $MPS_SERVE_BIN)
#   --out DIR    work/artifact directory (default: mktemp -d); the
#                aggregated recovery_metrics.json lands here
#   --sigkill    also run the external SIGKILL sweep
set -u

BIN=${MPS_SERVE_BIN:-build/tools/mps_serve}
OUT=""
SIGKILL=0
while [ $# -gt 0 ]; do
  case "$1" in
    --bin) BIN=$2; shift 2 ;;
    --out) OUT=$2; shift 2 ;;
    --sigkill) SIGKILL=1; shift ;;
    *) echo "crash_matrix: unknown arg $1" >&2; exit 2 ;;
  esac
done

if [ ! -x "$BIN" ]; then
  echo "crash_matrix: binary not found or not executable: $BIN" >&2
  exit 2
fi
if [ -z "$OUT" ]; then
  OUT=$(mktemp -d /tmp/crash_matrix.XXXXXX)
fi
mkdir -p "$OUT"
echo "crash_matrix: bin=$BIN out=$OUT"

# Workload shared by every leg: identical trace parameters mean identical
# per-request answers, so one reference hash file serves all kill points.
# 4 tenants + 500/25 re-registrations = 24 durable appends per full run;
# --snapshot-every 6 keeps the background snapshotter busy mid-run.
ARGS="--requests 500 --tenants 4 --scale 0.03 --seed 7 \
      --reregister-every 25 --snapshot-every 6"
CRASH_EXIT=43

FAILURES=0
POINTS_RUN=0
POINTS_PASSED=0
METRICS_LINES=""

fail() {
  echo "crash_matrix: FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

# run_leg <logfile> <extra args...> — returns the leg's exit code.  When
# FLIGHT_DIR is set, the flight recorder's last-gasp bundle dump is armed
# for the leg (the injected-crash hook writes flight_bundle_*.json there
# before _exit); it must stay UNSET otherwise — a set-but-empty
# MPS_FLIGHT_DIR is a strict-parse error in the binary.
run_leg() {
  local log=$1
  shift
  if [ -n "${FLIGHT_DIR:-}" ]; then
    # shellcheck disable=SC2086
    MPS_FLIGHT_DIR="$FLIGHT_DIR" "$BIN" $ARGS "$@" >"$log" 2>&1
  else
    # shellcheck disable=SC2086
    "$BIN" $ARGS "$@" >"$log" 2>&1
  fi
}

# verify_bundle <name> <dir> — every injected kill point must leave a
# debug bundle behind: the crash hook dumps the flight recorder before
# _exit, so a missing or field-less bundle means the always-on recorder
# was not live on the dying path.
verify_bundle() {
  local name=$1 dir=$2 bundle
  bundle=$(ls "$dir"/flight_bundle_*.json 2>/dev/null | head -1)
  if [ -z "$bundle" ]; then
    fail "$name: no flight bundle in $dir after injected crash"
    return 1
  fi
  if ! grep -q '"bundle":"mps-flight"' "$bundle" \
     || ! grep -q '"reason"' "$bundle" \
     || ! grep -q '"events"' "$bundle"; then
    fail "$name: flight bundle $bundle missing bundle/reason/events fields"
    return 1
  fi
  return 0
}

# verify_recovery <name> <dir> <log> — checks (a)(b)(c) after a restart.
verify_recovery() {
  local name=$1 dir=$2 log=$3 ok=1
  if ! grep -q "durable recovery:" "$log"; then
    fail "$name: no 'durable recovery:' line in $log"
    ok=0
  fi
  local manifest_line
  manifest_line=$(grep "acked registrations recovered" "$log" || true)
  if [ -z "$manifest_line" ]; then
    fail "$name: no manifest verification line in $log"
    ok=0
  else
    # "manifest: N/M acked registrations recovered" — require N == M.
    local got want
    got=$(echo "$manifest_line" | sed 's|manifest: \([0-9]*\)/.*|\1|')
    want=$(echo "$manifest_line" | sed 's|manifest: [0-9]*/\([0-9]*\) .*|\1|')
    if [ "$got" != "$want" ]; then
      fail "$name: lost acked registrations ($manifest_line)"
      ok=0
    fi
  fi
  if [ -f "$dir/rec.hash" ]; then
    if ! cmp -s "$OUT/ref.hash" "$dir/rec.hash"; then
      fail "$name: recovered result hashes differ from uninterrupted reference"
      ok=0
    fi
  fi
  return $((1 - ok))
}

# record_metrics <name> <status> <log>
record_metrics() {
  local name=$1 status=$2 log=$3
  local rec
  rec=$(grep "durable recovery:" "$log" | head -1 | sed 's/"/\\"/g' || true)
  METRICS_LINES="$METRICS_LINES    {\"kill_point\": \"$name\", \"status\": \"$status\", \"recovery\": \"$rec\"},
"
}

# --- Reference leg: uninterrupted durable run -------------------------------
REF_DIR=$OUT/ref
mkdir -p "$REF_DIR"
if ! run_leg "$OUT/ref.log" --durable-dir "$REF_DIR" \
     --durable-manifest "$REF_DIR/manifest.txt" --hash-out "$OUT/ref.hash"; then
  echo "crash_matrix: reference leg failed:" >&2
  cat "$OUT/ref.log" >&2
  exit 1
fi
echo "crash_matrix: reference leg ok ($(wc -l <"$OUT/ref.hash") hashes)"

# --- Scripted kill points ---------------------------------------------------
# post-ack counts are in manifest appends (4 registrations + re-registers);
# wal counts are in WAL appends; snapshot points fire in the background
# snapshotter or, at the latest, in the shutdown snapshot.
KILL_POINTS="wal-mid:1 wal-mid:3 wal-post:2 snapshot-mid:1 snapshot-post:1 post-ack:4 post-ack:9"

for kp in $KILL_POINTS; do
  name=$(echo "$kp" | tr ':' '_')
  dir=$OUT/kp_$name
  mkdir -p "$dir"
  POINTS_RUN=$((POINTS_RUN + 1))

  FLIGHT_DIR="$dir"
  run_leg "$dir/crash.log" --durable-dir "$dir" \
    --durable-manifest "$dir/manifest.txt" --crash-point "$kp"
  rc=$?
  FLIGHT_DIR=""
  if [ $rc -ne $CRASH_EXIT ]; then
    fail "$kp: crash leg exited $rc, expected $CRASH_EXIT (injection never fired?)"
    record_metrics "$kp" "crash-leg-failed" "$dir/crash.log"
    continue
  fi
  verify_bundle "$kp" "$dir" || true

  if ! run_leg "$dir/recover.log" --durable-dir "$dir" \
       --durable-manifest "$dir/manifest.txt" --hash-out "$dir/rec.hash" \
       --metrics-out "$dir/metrics.json"; then
    fail "$kp: recovery leg exited non-zero"
    sed 's/^/  /' "$dir/recover.log" >&2
    record_metrics "$kp" "recovery-failed" "$dir/recover.log"
    continue
  fi
  if verify_recovery "$kp" "$dir" "$dir/recover.log"; then
    POINTS_PASSED=$((POINTS_PASSED + 1))
    echo "crash_matrix: $kp ok ($(grep 'durable recovery:' "$dir/recover.log"))"
    record_metrics "$kp" "passed" "$dir/recover.log"
  else
    record_metrics "$kp" "verify-failed" "$dir/recover.log"
  fi
done

# --- Crash mid-submission (no injection hook: plain _exit in the CLI) -------
dir=$OUT/kp_crash_after
mkdir -p "$dir"
POINTS_RUN=$((POINTS_RUN + 1))
run_leg "$dir/crash.log" --durable-dir "$dir" \
  --durable-manifest "$dir/manifest.txt" --crash-after 150
rc=$?
if [ $rc -ne $CRASH_EXIT ]; then
  fail "crash-after: crash leg exited $rc, expected $CRASH_EXIT"
  record_metrics "crash-after:150" "crash-leg-failed" "$dir/crash.log"
elif ! run_leg "$dir/recover.log" --durable-dir "$dir" \
     --durable-manifest "$dir/manifest.txt" --hash-out "$dir/rec.hash"; then
  fail "crash-after: recovery leg exited non-zero"
  record_metrics "crash-after:150" "recovery-failed" "$dir/recover.log"
elif verify_recovery "crash-after" "$dir" "$dir/recover.log"; then
  POINTS_PASSED=$((POINTS_PASSED + 1))
  echo "crash_matrix: crash-after:150 ok"
  record_metrics "crash-after:150" "passed" "$dir/recover.log"
else
  record_metrics "crash-after:150" "verify-failed" "$dir/recover.log"
fi

# --- External SIGKILL sweep (opt-in) ----------------------------------------
if [ "$SIGKILL" = "1" ]; then
  for i in 1 2 3; do
    name=sigkill_$i
    dir=$OUT/$name
    mkdir -p "$dir"
    POINTS_RUN=$((POINTS_RUN + 1))
    # Longer trace so the kill lands mid-run on fast machines.
    # shellcheck disable=SC2086
    "$BIN" $ARGS --requests 20000 --durable-dir "$dir" \
      --durable-manifest "$dir/manifest.txt" >"$dir/crash.log" 2>&1 &
    pid=$!
    sleep "0.$((i * 2))"
    kill -9 "$pid" 2>/dev/null
    wait "$pid" 2>/dev/null
    rc=$?
    if [ $rc -ne 137 ]; then
      echo "crash_matrix: $name: run finished before SIGKILL (rc=$rc); verifying recovery anyway"
    fi
    if ! run_leg "$dir/recover.log" --durable-dir "$dir" \
         --durable-manifest "$dir/manifest.txt"; then
      fail "$name: recovery leg exited non-zero"
      record_metrics "$name" "recovery-failed" "$dir/recover.log"
      continue
    fi
    if verify_recovery "$name" "$dir" "$dir/recover.log"; then
      POINTS_PASSED=$((POINTS_PASSED + 1))
      echo "crash_matrix: $name ok"
      record_metrics "$name" "passed" "$dir/recover.log"
    else
      record_metrics "$name" "verify-failed" "$dir/recover.log"
    fi
  done
fi

# --- Aggregate artifact -----------------------------------------------------
{
  echo "{"
  echo "  \"kill_points_run\": $POINTS_RUN,"
  echo "  \"kill_points_passed\": $POINTS_PASSED,"
  echo "  \"failures\": $FAILURES,"
  echo "  \"results\": ["
  printf '%s' "$METRICS_LINES" | sed '$ s/},$/}/'
  echo "  ]"
  echo "}"
} >"$OUT/recovery_metrics.json"

echo "crash_matrix: $POINTS_PASSED/$POINTS_RUN kill points passed" \
     "(metrics: $OUT/recovery_metrics.json)"
if [ "$FAILURES" -ne 0 ]; then
  echo "crash_matrix: FAILED ($FAILURES failure(s))" >&2
  exit 1
fi
echo "crash_matrix: PASS"
