#!/usr/bin/env python3
"""Report-only delta table between BENCH_*.json runs and a committed baseline.

The modeled timeline is deterministic, so any delta in a *_ms metric at the
same scale is a real change in the cost model or the kernels, not noise.
This script REPORTS deltas — a changed metric never fails the build; the
table is for the reviewer reading the CI log.  Broken *inputs* do fail it:
a missing/unreadable baseline, a run directory with no BENCH_*.json, or a
malformed run file exits 1, so CI can't silently "pass" a bench step whose
output was never produced.

Usage:
    bench_delta.py --baseline BENCH_seed.json --dir <dir with BENCH_*.json>

Baseline format (committed as BENCH_seed.json at the repo root):
    {"schema": 1, "scale": 0.05,
     "benches": {"fig5_spmv": {"Dense": {"merge_ms": 0.016, ...}, ...}, ...}}

Run files are what analysis::BenchJson writes:
    {"bench": "fig5_spmv", "schema": 1,
     "cases": [{"name": "Dense", "metrics": {...}}, ...], "stats": {...}}
"""

import argparse
import glob
import json
import os
import sys


def load_run(path):
    with open(path) as f:
        doc = json.load(f)
    cases = {c["name"]: c.get("metrics", {}) for c in doc.get("cases", [])}
    return doc.get("bench", os.path.basename(path)), cases


def fmt_delta(base, cur):
    if base is None:
        return "new"
    if cur is None:
        return "gone"
    if base == cur:
        return "="
    if base == 0:
        return f"{cur:+.6g} (was 0)"
    pct = 100.0 * (cur - base) / abs(base)
    return f"{pct:+.2f}%"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True, help="committed BENCH_seed.json")
    ap.add_argument("--dir", required=True, help="directory with BENCH_*.json runs")
    ap.add_argument(
        "--metric-suffix",
        default="_ms",
        help="only compare metrics with this suffix (default: _ms)",
    )
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            seed = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_delta: ERROR: cannot read baseline: {e}", file=sys.stderr)
        return 1
    baselines = seed.get("benches", {})
    if not isinstance(baselines, dict) or not baselines:
        print(f"bench_delta: ERROR: baseline {args.baseline} has no 'benches' "
              "table", file=sys.stderr)
        return 1

    runs = sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json")))
    if not runs:
        print(f"bench_delta: ERROR: no BENCH_*.json under {args.dir} — "
              "did the bench step run?", file=sys.stderr)
        return 1

    print(f"bench delta vs {args.baseline} (scale {seed.get('scale', '?')}; "
          "deltas are report-only — only broken inputs fail the build)")
    print(f"{'bench':<18} {'case':<14} {'metric':<14} "
          f"{'baseline':>14} {'current':>14} {'delta':>12}")
    exact, changed, uncovered, malformed = 0, 0, 0, 0
    for path in runs:
        try:
            bench, cases = load_run(path)
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as e:
            print(f"bench_delta: ERROR: malformed run file {path}: {e}",
                  file=sys.stderr)
            malformed += 1
            continue
        base_cases = baselines.get(bench)
        if base_cases is None:
            uncovered += 1
            print(f"{bench:<18} (no baseline recorded; skipped)")
            continue
        for case in sorted(set(base_cases) | set(cases)):
            b_metrics = base_cases.get(case, {})
            c_metrics = cases.get(case, {})
            for metric in sorted(set(b_metrics) | set(c_metrics)):
                if not metric.endswith(args.metric_suffix):
                    continue
                b, c = b_metrics.get(metric), c_metrics.get(metric)
                delta = fmt_delta(b, c)
                if delta == "=":
                    exact += 1
                    continue  # only print drift; exact matches are the norm
                changed += 1
                bs = "-" if b is None else f"{b:.6g}"
                cs = "-" if c is None else f"{c:.6g}"
                print(f"{bench:<18} {case:<14} {metric:<14} "
                      f"{bs:>14} {cs:>14} {delta:>12}")
    print(f"bench_delta: {exact} metric(s) exactly unchanged, "
          f"{changed} changed/new/gone, {uncovered} bench(es) without baseline")
    if malformed:
        print(f"bench_delta: ERROR: {malformed} malformed run file(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
