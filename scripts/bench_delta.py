#!/usr/bin/env python3
"""Report-only delta table between BENCH_*.json runs and a committed baseline.

The modeled timeline is deterministic, so any delta in a *_ms metric at the
same scale is a real change in the cost model or the kernels, not noise.
This script REPORTS deltas; it never fails the build (exit 0 always) — the
table is for the reviewer reading the CI log.

Usage:
    bench_delta.py --baseline BENCH_seed.json --dir <dir with BENCH_*.json>

Baseline format (committed as BENCH_seed.json at the repo root):
    {"schema": 1, "scale": 0.05,
     "benches": {"fig5_spmv": {"Dense": {"merge_ms": 0.016, ...}, ...}, ...}}

Run files are what analysis::BenchJson writes:
    {"bench": "fig5_spmv", "schema": 1,
     "cases": [{"name": "Dense", "metrics": {...}}, ...], "stats": {...}}
"""

import argparse
import glob
import json
import os
import sys


def load_run(path):
    with open(path) as f:
        doc = json.load(f)
    cases = {c["name"]: c.get("metrics", {}) for c in doc.get("cases", [])}
    return doc.get("bench", os.path.basename(path)), cases


def fmt_delta(base, cur):
    if base is None:
        return "new"
    if cur is None:
        return "gone"
    if base == cur:
        return "="
    if base == 0:
        return f"{cur:+.6g} (was 0)"
    pct = 100.0 * (cur - base) / abs(base)
    return f"{pct:+.2f}%"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True, help="committed BENCH_seed.json")
    ap.add_argument("--dir", required=True, help="directory with BENCH_*.json runs")
    ap.add_argument(
        "--metric-suffix",
        default="_ms",
        help="only compare metrics with this suffix (default: _ms)",
    )
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            seed = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_delta: cannot read baseline: {e}")
        return 0
    baselines = seed.get("benches", {})

    runs = sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json")))
    if not runs:
        print(f"bench_delta: no BENCH_*.json under {args.dir}")
        return 0

    print(f"bench delta vs {args.baseline} (scale {seed.get('scale', '?')}; "
          "report-only, never fails the build)")
    print(f"{'bench':<18} {'case':<14} {'metric':<14} "
          f"{'baseline':>14} {'current':>14} {'delta':>12}")
    exact, changed, uncovered = 0, 0, 0
    for path in runs:
        try:
            bench, cases = load_run(path)
        except (json.JSONDecodeError, KeyError, TypeError) as e:
            print(f"bench_delta: skipping malformed {path}: {e}")
            continue
        base_cases = baselines.get(bench)
        if base_cases is None:
            uncovered += 1
            print(f"{bench:<18} (no baseline recorded; skipped)")
            continue
        for case in sorted(set(base_cases) | set(cases)):
            b_metrics = base_cases.get(case, {})
            c_metrics = cases.get(case, {})
            for metric in sorted(set(b_metrics) | set(c_metrics)):
                if not metric.endswith(args.metric_suffix):
                    continue
                b, c = b_metrics.get(metric), c_metrics.get(metric)
                delta = fmt_delta(b, c)
                if delta == "=":
                    exact += 1
                    continue  # only print drift; exact matches are the norm
                changed += 1
                bs = "-" if b is None else f"{b:.6g}"
                cs = "-" if c is None else f"{c:.6g}"
                print(f"{bench:<18} {case:<14} {metric:<14} "
                      f"{bs:>14} {cs:>14} {delta:>12}")
    print(f"bench_delta: {exact} metric(s) exactly unchanged, "
          f"{changed} changed/new/gone, {uncovered} bench(es) without baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
