#!/usr/bin/env python3
"""Report-only delta table between BENCH_*.json runs and committed baselines.

The modeled timeline is deterministic, so any delta in a *_ms metric at the
same scale is a real change in the cost model or the kernels, not noise.
This script REPORTS deltas — a changed metric never fails the build; the
table is for the reviewer reading the CI log.  Broken *inputs* do fail it:
a missing/unreadable baseline, a run directory with no BENCH_*.json, or a
malformed run file exits 1, so CI can't silently "pass" a bench step whose
output was never produced.

Usage:
    bench_delta.py --dir <dir with BENCH_*.json runs>
    bench_delta.py --baseline BENCH_seed.json --dir <dir>

With no --baseline, EVERY BENCH_*.json committed at the repo root (or
--baseline-dir) is loaded, so adding a baseline file is all it takes to
put a bench under delta coverage — no script change, no hardcoded list.
Two baseline formats are accepted and merged:

  seed format (BENCH_seed.json):
    {"schema": 1, "scale": 0.05,
     "benches": {"fig5_spmv": {"Dense": {"merge_ms": 0.016, ...}, ...}}}

  raw run format (what analysis::BenchJson writes, committed as-is):
    {"bench": "serve_throughput", "schema": 1,
     "cases": [{"name": "t1_w1", "metrics": {...}}, ...], "stats": {...}}
"""

import argparse
import glob
import json
import os
import sys


def load_run(path):
    with open(path) as f:
        doc = json.load(f)
    cases = {c["name"]: c.get("metrics", {}) for c in doc.get("cases", [])}
    return doc.get("bench", os.path.basename(path)), cases


def load_baselines(paths):
    """Merge any mix of seed-format and raw-run-format baseline files into
    one {bench: {case: {metric: value}}} table.  Raises on unreadable or
    malformed input (the caller turns that into exit 1)."""
    merged = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        if "benches" in doc:  # seed format: a table of benches
            table = doc["benches"]
            if not isinstance(table, dict):
                raise ValueError(f"{path}: 'benches' is not a table")
            for bench, cases in table.items():
                merged.setdefault(bench, {}).update(cases)
        elif "bench" in doc:  # raw BenchJson run committed as baseline
            bench, cases = load_run(path)
            merged.setdefault(bench, {}).update(cases)
        else:
            raise ValueError(f"{path}: neither seed nor run format")
    return merged


def fmt_delta(base, cur):
    if base is None:
        return "new"
    if cur is None:
        return "gone"
    if base == cur:
        return "="
    if base == 0:
        return f"{cur:+.6g} (was 0)"
    pct = 100.0 * (cur - base) / abs(base)
    return f"{pct:+.2f}%"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default=None,
                    help="one baseline file (default: every BENCH_*.json "
                         "in --baseline-dir)")
    ap.add_argument("--baseline-dir",
                    default=os.path.dirname(os.path.dirname(
                        os.path.abspath(__file__))),
                    help="where committed baselines live (default: repo root)")
    ap.add_argument("--dir", required=True,
                    help="directory with BENCH_*.json runs")
    ap.add_argument(
        "--metric-suffix",
        default="_ms",
        help="only compare metrics with this suffix (default: _ms)",
    )
    args = ap.parse_args()

    if args.baseline:
        baseline_paths = [args.baseline]
        label = args.baseline
    else:
        baseline_paths = sorted(
            glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json")))
        label = f"{len(baseline_paths)} committed baseline(s)"
    try:
        baselines = load_baselines(baseline_paths)
    except (OSError, json.JSONDecodeError, ValueError, TypeError,
            AttributeError) as e:
        print(f"bench_delta: ERROR: cannot read baseline: {e}", file=sys.stderr)
        return 1
    if not baselines:
        print("bench_delta: ERROR: no baselines found "
              f"({label}; looked in {args.baseline_dir})", file=sys.stderr)
        return 1

    runs = sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json")))
    if not runs:
        print(f"bench_delta: ERROR: no BENCH_*.json under {args.dir} — "
              "did the bench step run?", file=sys.stderr)
        return 1

    print(f"bench delta vs {label} "
          "(deltas are report-only — only broken inputs fail the build)")
    print(f"{'bench':<18} {'case':<14} {'metric':<14} "
          f"{'baseline':>14} {'current':>14} {'delta':>12}")
    exact, changed, uncovered, malformed = 0, 0, 0, 0
    for path in runs:
        try:
            bench, cases = load_run(path)
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as e:
            print(f"bench_delta: ERROR: malformed run file {path}: {e}",
                  file=sys.stderr)
            malformed += 1
            continue
        base_cases = baselines.get(bench)
        if base_cases is None:
            uncovered += 1
            print(f"{bench:<18} (no baseline recorded; skipped)")
            continue
        for case in sorted(set(base_cases) | set(cases)):
            b_metrics = base_cases.get(case, {})
            c_metrics = cases.get(case, {})
            for metric in sorted(set(b_metrics) | set(c_metrics)):
                if not metric.endswith(args.metric_suffix):
                    continue
                b, c = b_metrics.get(metric), c_metrics.get(metric)
                delta = fmt_delta(b, c)
                if delta == "=":
                    exact += 1
                    continue  # only print drift; exact matches are the norm
                changed += 1
                bs = "-" if b is None else f"{b:.6g}"
                cs = "-" if c is None else f"{c:.6g}"
                print(f"{bench:<18} {case:<14} {metric:<14} "
                      f"{bs:>14} {cs:>14} {delta:>12}")
    print(f"bench_delta: {exact} metric(s) exactly unchanged, "
          f"{changed} changed/new/gone, {uncovered} bench(es) without baseline")
    if malformed:
        print(f"bench_delta: ERROR: {malformed} malformed run file(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
