// Balanced-path set algebra beyond union: the paper notes the key-rank
// decomposition supports intersection, difference and symmetric
// difference too.  This example runs all four on sorted ID streams — a
// log-joining / audit-diff style workload — and checks them against the
// standard library.
//
//   $ ./examples/set_algebra [events_per_stream]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "primitives/set_ops.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "vgpu/device.hpp"
#include "util/main_guard.hpp"

namespace {

int run_main(int argc, char** argv) {
  using namespace mps;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 500'000;

  // Two day's worth of event IDs from overlapping ID spaces (sorted, with
  // duplicates — the case plain merge path cannot partition).
  util::Rng rng(7);
  std::vector<std::uint64_t> monday(n), tuesday(n);
  for (auto& x : monday) x = rng.uniform(n * 2);
  for (auto& x : tuesday) x = n / 2 + rng.uniform(n * 2);
  std::sort(monday.begin(), monday.end());
  std::sort(tuesday.begin(), tuesday.end());

  vgpu::Device device;
  util::Table t("balanced-path set algebra over " + util::fmt_int(static_cast<long long>(n)) +
                "-element sorted streams");
  t.set_header({"operation", "outputs", "modeled ms", "verified"});

  struct Case {
    const char* name;
    primitives::SetOp op;
  };
  for (const Case c : {Case{"union", primitives::SetOp::kUnion},
                       Case{"intersection", primitives::SetOp::kIntersection},
                       Case{"difference", primitives::SetOp::kDifference},
                       Case{"symmetric difference",
                            primitives::SetOp::kSymmetricDifference}}) {
    const auto res =
        primitives::device_set_op_keys<std::uint64_t>(device, monday, tuesday, c.op);
    // Reference via the standard library.
    std::vector<std::uint64_t> expect;
    switch (c.op) {
      case primitives::SetOp::kUnion:
        std::set_union(monday.begin(), monday.end(), tuesday.begin(), tuesday.end(),
                       std::back_inserter(expect));
        break;
      case primitives::SetOp::kIntersection:
        std::set_intersection(monday.begin(), monday.end(), tuesday.begin(),
                              tuesday.end(), std::back_inserter(expect));
        break;
      case primitives::SetOp::kDifference:
        std::set_difference(monday.begin(), monday.end(), tuesday.begin(),
                            tuesday.end(), std::back_inserter(expect));
        break;
      case primitives::SetOp::kSymmetricDifference:
        std::set_symmetric_difference(monday.begin(), monday.end(), tuesday.begin(),
                                      tuesday.end(), std::back_inserter(expect));
        break;
    }
    const bool ok = res.keys == expect;
    t.add_row({c.name, util::fmt_int(static_cast<long long>(res.keys.size())),
               util::fmt(res.modeled_ms, 3), ok ? "yes" : "NO"});
    if (!ok) {
      std::fputs(t.render().c_str(), stdout);
      return 1;
    }
  }
  std::fputs(t.render().c_str(), stdout);
  std::puts("\nEvery operation is partitioned with balanced path, so each CTA "
            "processes the same number of path elements regardless of how "
            "duplicates clump.");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return mps::util::guarded_main("set_algebra",
                                 [&] { return run_main(argc, argv); });
}
