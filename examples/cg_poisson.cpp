// Conjugate-gradient solve of a 2D Poisson problem using merge-path SpMV
// as the kernel of the iteration — the "sparse iterative solver" use case
// the paper's Section II motivates SpMV work with.
//
//   $ ./examples/cg_poisson [grid_n]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/spmv.hpp"
#include "util/timer.hpp"
#include "vgpu/device.hpp"
#include "workloads/generators.hpp"
#include "util/main_guard.hpp"

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace

namespace {

int run_main(int argc, char** argv) {
  using namespace mps;
  const index_t n = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 128;
  const auto a = workloads::poisson2d(n, n);
  const auto rows = static_cast<std::size_t>(a.num_rows);
  std::printf("2D Poisson, %d x %d grid: %lld unknowns, %d nonzeros\n", n, n,
              static_cast<long long>(rows), a.nnz());

  vgpu::Device device;

  // The CG loop applies the same pattern every iteration: build the
  // merge-path partition once and amortize it across the solve.
  const auto plan = core::merge::spmv_plan(device, a);

  // b = A * ones, so the exact solution is all-ones — easy to verify.
  std::vector<double> ones(rows, 1.0), rhs(rows);
  core::merge::spmv_execute(device, a, ones, rhs, plan);

  std::vector<double> sol(rows, 0.0);        // x0 = 0
  std::vector<double> r = rhs;               // r0 = b - A x0 = b
  std::vector<double> p = r;                 // p0 = r0
  std::vector<double> ap(rows);
  double rr = dot(r, r);
  const double tol2 = 1e-20 * rr;

  util::WallTimer wall;
  double spmv_ms = 0.0;
  int iters = 0;
  for (; iters < 10 * n && rr > tol2; ++iters) {
    spmv_ms += core::merge::spmv_execute(device, a, p, ap, plan).modeled_ms();
    const double alpha = rr / dot(p, ap);
    axpy(alpha, p, sol);
    axpy(-alpha, ap, r);
    const double rr_new = dot(r, r);
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < rows; ++i) p[i] = r[i] + beta * p[i];
  }

  double max_err = 0.0;
  for (double v : sol) max_err = std::max(max_err, std::abs(v - 1.0));
  std::printf("CG converged in %d iterations; max |x - 1| = %.3e\n", iters, max_err);
  std::printf("modeled SpMV time: %.3f ms total (%.4f ms per iteration)\n",
              spmv_ms, spmv_ms / std::max(iters, 1));
  std::printf("merge-path plan:   %.4f ms built once, amortized over %d applies\n",
              plan.plan_ms(), iters + 1);
  std::printf("host wall time:    %.1f ms\n", wall.milliseconds());
  return max_err < 1e-6 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return mps::util::guarded_main("cg_poisson",
                                 [&] { return run_main(argc, argv); });
}
