// Conjugate-gradient solve of a 2D Poisson problem using merge-path SpMV
// as the kernel of the iteration — the "sparse iterative solver" use case
// the paper's Section II motivates SpMV work with.
//
// The CG loop runs under the self-healing driver (solver/resilient.hpp):
// the solver state is tracked, periodically scrubbed through the device
// (where armed MPS_FAULT_BITFLIP_* faults land) and verified, and any
// detected corruption rolls back to the last clean checkpoint and
// rebuilds the SpMV plan.  With no faults armed the driver adds only the
// scan cadence; the solve is otherwise identical.
//
//   $ ./examples/cg_poisson [grid_n]
//   $ MPS_INTEGRITY_CHECK=1 MPS_FAULT_BITFLIP_ALLOC=7
//     MPS_FAULT_BITFLIP_OFFSET=40 ./examples/cg_poisson
//     (a flip lands mid-solve; the driver detects, rolls back, recovers)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "autotune/autotune.hpp"
#include "core/spmv.hpp"
#include "solver/resilient.hpp"
#include "util/timer.hpp"
#include "vgpu/device.hpp"
#include "workloads/generators.hpp"
#include "util/main_guard.hpp"

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace

namespace {

int run_main(int argc, char** argv) {
  using namespace mps;
  const index_t n = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 128;
  const auto a = workloads::poisson2d(n, n);
  const auto rows = static_cast<std::size_t>(a.num_rows);
  std::printf("2D Poisson, %d x %d grid: %lld unknowns, %d nonzeros\n", n, n,
              static_cast<long long>(rows), a.nnz());

  vgpu::Device device;

  // The CG loop applies the same pattern every iteration: build the
  // merge-path partition once and amortize it across the solve.  With
  // MPS_AUTOTUNE=1 the one-time setup instead runs the autotuner's
  // trial protocol; the winning kernel computes bitwise-identical
  // iterates, so the solve trajectory cannot change — only its modeled
  // per-iteration cost.
  auto plan = core::merge::spmv_plan(device, a);
  std::optional<autotune::TunedPlan> tuned;
  if (autotune::enabled()) {
    tuned.emplace(autotune::tune(device, a));
    std::printf("autotune: %s (%.4f ms/apply modeled, tuned in %.4f ms)\n",
                tuned->choice().name, tuned->steady_ms(), tuned->tune_ms());
  }
  auto apply = [&](const std::vector<double>& x, std::vector<double>& y) {
    return tuned ? tuned->execute(device, a, x, y)
                 : core::merge::spmv_execute(device, a, x, y, plan);
  };

  // b = A * ones, so the exact solution is all-ones — easy to verify.
  std::vector<double> ones(rows, 1.0), rhs(rows);
  apply(ones, rhs);

  std::vector<double> sol(rows, 0.0);        // x0 = 0
  std::vector<double> r = rhs;               // r0 = b - A x0 = b
  std::vector<double> p = r;                 // p0 = r0
  std::vector<double> ap(rows);
  double rr = dot(r, r);
  const double tol = 1e-10 * std::sqrt(rr);

  util::WallTimer wall;
  double spmv_ms = 0.0;

  solver::ResilientConfig rcfg;
  rcfg.max_iterations = 10 * n;
  rcfg.tolerance = tol;
  solver::ResilientSolver driver(device, rcfg);
  driver.track("x", sol);
  driver.track("r", r);
  driver.track("p", p);
  driver.track("Ap", ap);
  driver.track_scalar("r.r", rr);

  const auto report = driver.run(
      [&](int) {
        const auto s = apply(p, ap);
        spmv_ms += s.modeled_ms();
        const double alpha = rr / dot(p, ap);
        axpy(alpha, p, sol);
        axpy(-alpha, ap, r);
        const double rr_new = dot(r, r);
        const double beta = rr_new / rr;
        rr = rr_new;
        for (std::size_t i = 0; i < rows; ++i) p[i] = r[i] + beta * p[i];
        return solver::StepResult{std::sqrt(rr), s.modeled_ms()};
      },
      [&] {
        plan = core::merge::spmv_plan(device, a);
        if (tuned) tuned.emplace(autotune::tune(device, a));
      });
  const int iters = report.iterations;

  double max_err = 0.0;
  for (double v : sol) max_err = std::max(max_err, std::abs(v - 1.0));
  std::printf("CG converged in %d iterations; max |x - 1| = %.3e\n", iters, max_err);
  std::printf("modeled SpMV time: %.3f ms total (%.4f ms per iteration)\n",
              spmv_ms, spmv_ms / std::max(iters, 1));
  std::printf("merge-path plan:   %.4f ms built once, amortized over %d applies\n",
              plan.plan_ms(), iters + 1);
  if (report.detections > 0) {
    std::printf("resilience:        %d corruption(s) detected, %d rollback(s), "
                "%d plan rebuild(s); guard overhead %.3f ms modeled\n",
                report.detections, report.restores, report.plan_rebuilds,
                report.guard_ms);
  }
  std::printf("host wall time:    %.1f ms\n", wall.milliseconds());
  return (report.converged && max_err < 1e-6) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return mps::util::guarded_main("cg_poisson",
                                 [&] { return run_main(argc, argv); });
}
