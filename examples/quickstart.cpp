// Quickstart: build a small sparse matrix, run all three merge-path
// kernels on the virtual GPU, and print the results plus their modeled
// cost.  This walks the paper's Section III example end to end.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <vector>

#include "core/spadd.hpp"
#include "core/spgemm.hpp"
#include "core/spmv.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "util/table.hpp"
#include "vgpu/device.hpp"
#include "util/main_guard.hpp"

namespace {

int run_main() {
  using namespace mps;

  // The paper's example matrices (Section III).
  sparse::CooD a_coo(4, 4);
  a_coo.push_back(0, 0, 10);
  a_coo.push_back(1, 1, 20);
  a_coo.push_back(1, 2, 30);
  a_coo.push_back(1, 3, 40);
  a_coo.push_back(2, 3, 50);
  a_coo.push_back(3, 1, 60);

  sparse::CooD b_coo(4, 4);
  b_coo.push_back(0, 0, 1);
  b_coo.push_back(1, 1, 2);
  b_coo.push_back(1, 3, 3);
  b_coo.push_back(2, 0, 4);
  b_coo.push_back(2, 1, 5);
  b_coo.push_back(3, 1, 6);
  b_coo.push_back(3, 3, 7);

  const auto a = sparse::coo_to_csr(a_coo);
  const auto b = sparse::coo_to_csr(b_coo);

  // Every kernel runs against a virtual GPU device (a GTX Titan model by
  // default); it executes functionally on host threads and reports
  // modeled SIMT time.
  vgpu::Device device;

  // --- SpMV: y = A x ----------------------------------------------------
  const std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y(4);
  const auto spmv_stats = core::merge::spmv(device, a, x, y);
  std::printf("SpMV  y = A x           -> [%g %g %g %g]   (%.4f ms modeled, %d CTAs)\n",
              y[0], y[1], y[2], y[3], spmv_stats.modeled_ms(), spmv_stats.num_ctas);

  // --- SpAdd: C = A + B (balanced-path set union over tuples) -----------
  sparse::CooD c_add;
  const auto spadd_stats = core::merge::spadd(device, a_coo, b_coo, c_add);
  std::printf("SpAdd C = A + B         -> %d nonzeros      (%.4f ms modeled)\n",
              c_add.nnz(), spadd_stats.modeled_ms);

  // --- SpGEMM: C = A x B (two-level merge-path sort) ---------------------
  sparse::CsrD c_mul;
  const auto spgemm_stats = core::merge::spgemm(device, a, b, c_mul);
  std::printf("SpGEMM C = A x B        -> %d nonzeros from %lld products (%.4f ms modeled)\n",
              c_mul.nnz(), spgemm_stats.num_products, spgemm_stats.modeled_ms());

  // Print C = A x B; the paper's Section III-C gives the expected values.
  util::Table t("C = A x B");
  t.set_header({"row", "col", "value"});
  for (index_t r = 0; r < c_mul.num_rows; ++r) {
    for (index_t k = c_mul.row_offsets[static_cast<std::size_t>(r)];
         k < c_mul.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      t.add_row({util::fmt_int(r), util::fmt_int(c_mul.col[static_cast<std::size_t>(k)]),
                 util::fmt(c_mul.val[static_cast<std::size_t>(k)], 0)});
    }
  }
  std::fputs(t.render().c_str(), stdout);

  // Each kernel's launches are in the device log for inspection.
  std::printf("\n%zu kernels were launched in total; first: %s\n",
              device.log().size(), device.log().front().name.c_str());
  return 0;
}

}  // namespace

int main() {
  return mps::util::guarded_main("quickstart", [] { return run_main(); });
}
