// Evolving an ensemble of probability distributions over a Markov chain
// with merge-path SpMM: Y = P^T X for a block of initial distributions.
// Demonstrates the blocked kernel's bandwidth advantage over repeated
// SpMV — one pass over the transition matrix serves every chain.
//
//   $ ./examples/markov_ensemble [states] [chains]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/spmm.hpp"
#include "core/spmv.hpp"
#include "solver/resilient.hpp"
#include "sparse/convert.hpp"
#include "util/rng.hpp"
#include "vgpu/device.hpp"
#include "workloads/generators.hpp"
#include "util/main_guard.hpp"

namespace {

int run_main(int argc, char** argv) {
  using namespace mps;
  const index_t states = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 20'000;
  const index_t chains = argc > 2 ? static_cast<index_t>(std::atoi(argv[2])) : 8;

  // Random sparse transition structure (row = from-state), then column
  // operator P^T so x_{t+1} = P^T x_t advances a distribution.
  auto p = workloads::random_sparse(states, states, 6.0, 2.0, /*seed=*/77);
  for (index_t r = 0; r < p.num_rows; ++r) {
    double row_sum = 0.0;
    for (index_t k = p.row_offsets[static_cast<std::size_t>(r)];
         k < p.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      p.val[static_cast<std::size_t>(k)] =
          std::abs(p.val[static_cast<std::size_t>(k)]) + 0.05;
      row_sum += p.val[static_cast<std::size_t>(k)];
    }
    for (index_t k = p.row_offsets[static_cast<std::size_t>(r)];
         k < p.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
      p.val[static_cast<std::size_t>(k)] /= row_sum;
    }
  }
  const auto pt = sparse::transpose(p);
  std::printf("Markov chain: %d states, %d nnz transitions, %d parallel chains\n",
              states, pt.nnz(), chains);

  // Ensemble of point-mass initial distributions.
  util::Rng rng(5);
  const std::size_t nv = static_cast<std::size_t>(chains);
  std::vector<double> x(static_cast<std::size_t>(states) * nv, 0.0);
  for (std::size_t j = 0; j < nv; ++j) {
    x[static_cast<std::size_t>(rng.uniform(static_cast<std::uint64_t>(states))) * nv + j] = 1.0;
  }

  vgpu::Device device;
  std::vector<double> y(x.size());
  double spmm_ms = 0.0;
  const int steps = 30;

  // Mass conservation per chain (column sums stay 1) is this workload's
  // health signal: the self-healing driver runs the fixed-step evolution
  // with the mass error as the step residual, so a bit flip that breaks
  // conservation (or a scrub-readback mismatch) rolls the ensemble back
  // to the last clean checkpoint.
  auto mass_error = [&](const std::vector<double>& dist) {
    double worst = 0.0;
    for (std::size_t j = 0; j < nv; ++j) {
      double mass = 0.0;
      for (index_t s = 0; s < states; ++s) {
        mass += dist[static_cast<std::size_t>(s) * nv + j];
      }
      worst = std::max(worst, std::abs(mass - 1.0));
    }
    return worst;
  };
  solver::ResilientConfig rcfg;
  rcfg.max_iterations = steps;
  rcfg.tolerance = 0.0;  // fixed-step: run all 30 evolutions
  solver::ResilientSolver driver(device, rcfg);
  driver.track("x", x);
  driver.track("y", y);
  const auto report = driver.run([&](int) {
    const auto s = core::merge::spmm(device, pt, x, chains, y);
    spmm_ms += s.modeled_ms;
    x.swap(y);
    return solver::StepResult{mass_error(x), s.modeled_ms};
  });

  const double max_mass_err = report.residual;
  std::printf("after %d steps: max |mass - 1| = %.3e\n", report.iterations,
              max_mass_err);
  if (report.detections > 0) {
    std::printf("resilience: %d corruption(s) detected, %d rollback(s)\n",
                report.detections, report.restores);
  }

  // Compare against running the chains one by one with SpMV.  Even the
  // per-chain path gets the plan treatment: the transition pattern is
  // fixed, so the merge-path partition is built once and every step of
  // every chain runs through spmv_execute.
  std::vector<double> x1(static_cast<std::size_t>(states), 1.0 / states);
  std::vector<double> y1(x1.size());
  const auto plan = core::merge::spmv_plan(device, pt);
  const double spmv_ms =
      plan.plan_ms() +
      core::merge::spmv_execute(device, pt, x1, y1, plan).modeled_ms() * steps *
          chains;
  std::printf("modeled cost: SpMM ensemble %.3f ms vs %d separate planned SpMV "
              "chains %.3f ms (%.2fx saved)\n",
              spmm_ms, chains, spmv_ms, spmv_ms / spmm_ms);
  return max_mass_err < 1e-9 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return mps::util::guarded_main("markov_ensemble",
                                 [&] { return run_main(argc, argv); });
}
