// Algebraic-multigrid Galerkin coarsening: A_coarse = R * A * P computed
// with merge-path SpGEMM (twice) and verified against the sequential
// reference.  Forming RAP products is the motivating SpGEMM workload of
// the paper's own citation trail (Bell, Dalton, Olson 2012).
//
//   $ ./examples/amg_galerkin [grid_n]
#include <cstdio>
#include <cstdlib>

#include "baselines/seq.hpp"
#include "core/spgemm.hpp"
#include "sparse/compare.hpp"
#include "sparse/convert.hpp"
#include "vgpu/device.hpp"
#include "workloads/generators.hpp"
#include "util/main_guard.hpp"

namespace {

// Piecewise-constant aggregation prolongator: groups of 2x2 grid points
// aggregate to one coarse unknown.
mps::sparse::CsrD aggregation_prolongator(mps::index_t nx, mps::index_t ny) {
  using namespace mps;
  const index_t cx = (nx + 1) / 2, cy = (ny + 1) / 2;
  sparse::CooD p(nx * ny, cx * cy);
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      p.push_back(j * nx + i, (j / 2) * cx + (i / 2), 1.0);
    }
  }
  return sparse::coo_to_csr(p);
}

}  // namespace

namespace {

int run_main(int argc, char** argv) {
  using namespace mps;
  const index_t n = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 96;
  const auto a = workloads::poisson2d(n, n);
  const auto p = aggregation_prolongator(n, n);
  const auto r = sparse::transpose(p);
  std::printf("fine operator: %d x %d (%d nnz); prolongator: %d -> %d unknowns\n",
              a.num_rows, a.num_cols, a.nnz(), p.num_rows, p.num_cols);

  vgpu::Device device;

  // A_c = (R * A) * P via two merge SpGEMMs, with the full phase
  // accounting the paper's Fig 11 reports.
  sparse::CsrD ra, a_coarse;
  const auto s1 = core::merge::spgemm(device, r, a, ra);
  const auto s2 = core::merge::spgemm(device, ra, p, a_coarse);
  std::printf("R*A:       %lld products -> %d nnz (%.4f ms modeled)\n",
              s1.num_products, ra.nnz(), s1.modeled_ms());
  std::printf("(R*A)*P:   %lld products -> %d nnz (%.4f ms modeled)\n",
              s2.num_products, a_coarse.nnz(), s2.modeled_ms());
  std::printf("coarse operator: %d x %d, %.2f nnz/row (fine had %.2f)\n",
              a_coarse.num_rows, a_coarse.num_cols,
              static_cast<double>(a_coarse.nnz()) / a_coarse.num_rows,
              static_cast<double>(a.nnz()) / a.num_rows);

  // Verify against the sequential Gustavson reference.
  const auto ref = baselines::seq::spgemm(baselines::seq::spgemm(r, a), p);
  const auto cmp = sparse::compare_csr(a_coarse, ref, 1e-9, 1e-11);
  if (!cmp.equal) {
    std::printf("MISMATCH vs sequential reference: %s\n", cmp.detail.c_str());
    return 1;
  }
  std::puts("verified: merge SpGEMM Galerkin product matches the sequential reference.");

  // Row-sum sanity: Galerkin coarsening of the Poisson operator with
  // piecewise-constant aggregates preserves the (near-)nullspace: row
  // sums stay ~0 away from the boundary.
  double interior_max = 0.0;
  const index_t cx = (n + 1) / 2;
  for (index_t row = 0; row < a_coarse.num_rows; ++row) {
    const index_t ci = row % cx, cj = row / cx;
    if (ci == 0 || cj == 0 || ci == cx - 1 || cj >= (n + 1) / 2 - 1) continue;
    double sum = 0.0;
    for (index_t k = a_coarse.row_offsets[static_cast<std::size_t>(row)];
         k < a_coarse.row_offsets[static_cast<std::size_t>(row) + 1]; ++k) {
      sum += a_coarse.val[static_cast<std::size_t>(k)];
    }
    interior_max = std::max(interior_max, std::abs(sum));
  }
  std::printf("max interior coarse row sum: %.3e (expected ~0)\n", interior_max);

  // Re-coarsening with updated operator values (e.g. a new time step's
  // coefficients): the sparsity patterns are unchanged, so the symbolic
  // plan is built once and only the numeric phase repeats.
  core::merge::SpgemmPlan plan_ra, plan_rap;
  const auto sym1 = core::merge::spgemm_symbolic(device, r, a, plan_ra);
  sparse::CsrD ra2;
  core::merge::spgemm_numeric(device, r, a, plan_ra, ra2);
  const auto sym2 = core::merge::spgemm_symbolic(device, ra2, p, plan_rap);
  double numeric_ms = 0.0;
  auto a_t = a;
  for (int step = 0; step < 3; ++step) {
    for (auto& v : a_t.val) v *= 1.0 + 0.1 * (step + 1);  // new coefficients
    sparse::CsrD ra_t, ac_t;
    numeric_ms += core::merge::spgemm_numeric(device, r, a_t, plan_ra, ra_t);
    numeric_ms += core::merge::spgemm_numeric(device, ra_t, p, plan_rap, ac_t);
  }
  std::printf("plan reuse: symbolic %.3f ms once, then %.3f ms per numeric "
              "re-coarsening (vs %.3f ms full)\n",
              sym1.phases.total_ms() + sym2.phases.total_ms(), numeric_ms / 3,
              s1.modeled_ms() + s2.modeled_ms());
  return interior_max < 1e-9 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return mps::util::guarded_main("amg_galerkin",
                                 [&] { return run_main(argc, argv); });
}
