// PageRank over a power-law web graph — the Webbase-style irregular
// workload where the paper's flat decomposition shines.  Compares the
// modeled iteration cost of merge SpMV against the row-wise scheme on the
// same graph.
//
//   $ ./examples/pagerank [num_pages]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "autotune/autotune.hpp"
#include "baselines/rowwise.hpp"
#include "core/spmv.hpp"
#include "solver/resilient.hpp"
#include "sparse/convert.hpp"
#include "sparse/stats.hpp"
#include "vgpu/device.hpp"
#include "workloads/generators.hpp"
#include "util/main_guard.hpp"

namespace {

int run_main(int argc, char** argv) {
  using namespace mps;
  const index_t pages = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 50'000;
  // Webbase-like link structure: power-law out-degrees and hub columns.
  auto links = workloads::powerlaw_web(pages, 0.015, 1.5, 2, /*seed=*/2025);
  const auto stats = sparse::compute_stats(links);
  std::printf("web graph: %d pages, %lld links, avg out-degree %.2f (std %.2f, max %d)\n",
              pages, stats.nnz, stats.avg_row, stats.std_row, stats.max_row);

  // Column-normalize: M^T x distributes rank along out-links, so build
  // the transpose once and row-normalize it by source out-degree.
  auto m = sparse::transpose(links);
  {
    std::vector<double> out_degree(static_cast<std::size_t>(pages), 0.0);
    for (index_t r = 0; r < links.num_rows; ++r) {
      out_degree[static_cast<std::size_t>(r)] =
          static_cast<double>(links.row_length(r));
    }
    for (index_t r = 0; r < m.num_rows; ++r) {
      for (index_t k = m.row_offsets[static_cast<std::size_t>(r)];
           k < m.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
        const auto src = static_cast<std::size_t>(m.col[static_cast<std::size_t>(k)]);
        if (out_degree[src] > 0) m.val[static_cast<std::size_t>(k)] = 1.0 / out_degree[src];
      }
    }
  }

  vgpu::Device device;
  const double damping = 0.85;
  const std::size_t n = static_cast<std::size_t>(pages);
  std::vector<double> rank(n, 1.0 / static_cast<double>(pages));
  std::vector<double> next(n);

  // The link structure never changes between power iterations: partition
  // the merge path once and reuse it.  The power iteration runs under the
  // self-healing driver: rank state is scrubbed + verified on a cadence,
  // and a detected bit flip rolls back to the last clean checkpoint and
  // rebuilds the plan.
  auto plan = core::merge::spmv_plan(device, m);
  double merge_ms = plan.plan_ms();
  double rowwise_ms = 0.0;
  // MPS_AUTOTUNE=1: swap the statically tuned merge kernel for the
  // autotuned choice.  Bitwise-identical ranks either way (the whole
  // candidate space shares the canonical accumulation order).
  std::optional<autotune::TunedPlan> tuned;
  if (autotune::enabled()) {
    tuned.emplace(autotune::tune(device, m));
    std::printf("autotune: %s (%.4f ms/apply modeled, tuned in %.4f ms)\n",
                tuned->choice().name, tuned->steady_ms(), tuned->tune_ms());
  }

  solver::ResilientConfig rcfg;
  rcfg.max_iterations = 100;
  rcfg.tolerance = 1e-10;
  solver::ResilientSolver driver(device, rcfg);
  driver.track("rank", rank);
  driver.track("next", next);
  const auto report = driver.run(
      [&](int) {
        const auto s = tuned
                           ? tuned->execute(device, m, rank, next)
                           : core::merge::spmv_execute(device, m, rank, next, plan);
        merge_ms += s.modeled_ms();
        // Also time the row-wise scheme on identical input (result unused —
        // this is the comparison the figures make, embedded in an app).
        std::vector<double> scratch(n);
        rowwise_ms += baselines::rowwise::spmv(device, m, rank, scratch).modeled_ms;

        double delta = 0.0;
        const double teleport = (1.0 - damping) / static_cast<double>(pages);
        for (std::size_t i = 0; i < n; ++i) {
          next[i] = teleport + damping * next[i];
          delta += std::abs(next[i] - rank[i]);
        }
        rank.swap(next);
        return solver::StepResult{delta, s.modeled_ms()};
      },
      [&] {
        plan = core::merge::spmv_plan(device, m);
        if (tuned) tuned.emplace(autotune::tune(device, m));
      });
  const int iters = report.iterations - 1;

  // Top pages by rank.
  std::vector<index_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<index_t>(i);
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](index_t x, index_t y) {
                      return rank[static_cast<std::size_t>(x)] >
                             rank[static_cast<std::size_t>(y)];
                    });
  std::printf("converged after %d iterations; top pages:", iters + 1);
  for (int i = 0; i < 5; ++i) std::printf(" %d", order[static_cast<std::size_t>(i)]);
  if (report.detections > 0) {
    std::printf("\nresilience: %d corruption(s) detected, %d rollback(s), "
                "%d plan rebuild(s)",
                report.detections, report.restores, report.plan_rebuilds);
  }
  std::printf("\nmodeled SpMV cost per iteration: merge %.4f ms (plan %.4f ms "
              "amortized), row-wise %.4f ms (x%.2f)\n",
              merge_ms / (iters + 1), plan.plan_ms(), rowwise_ms / (iters + 1),
              rowwise_ms / merge_ms);
  std::puts("On power-law graphs the flat nonzero decomposition avoids the "
            "idle lanes row-wise schemes spend on hub rows.");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return mps::util::guarded_main("pagerank",
                                 [&] { return run_main(argc, argv); });
}
