// A complete algebraic-multigrid V-cycle solver built entirely from the
// merge-path kernels: SpGEMM constructs the coarse hierarchy (Galerkin
// triple products), SpMV drives the smoother and residuals, and the
// symbolic/numeric SpGEMM split would amortize re-setup.  Solves the 2D
// Poisson problem to 1e-8 and reports the modeled kernel time per cycle.
//
//   $ ./examples/amg_vcycle [grid_n]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/spgemm.hpp"
#include "core/spmv.hpp"
#include "solver/resilient.hpp"
#include "sparse/convert.hpp"
#include "sparse/ops.hpp"
#include "vgpu/device.hpp"
#include "workloads/generators.hpp"
#include "util/main_guard.hpp"

namespace {

using namespace mps;

struct Level {
  sparse::CsrD a;
  sparse::CsrD p;   ///< prolongation to this level's fine neighbour
  sparse::CsrD r;   ///< restriction (P^T)
  // Merge-path partitions built once per operator at setup: every V-cycle
  // re-applies the same patterns, so the plans amortize across the solve.
  core::merge::SpmvPlan a_plan;
  core::merge::SpmvPlan p_plan;
  core::merge::SpmvPlan r_plan;
  std::vector<double> diag;
  index_t nx = 0;
};

struct Hierarchy {
  std::vector<Level> levels;  ///< [0] = finest
  double setup_ms = 0.0;
};

sparse::CsrD aggregation_p(index_t nx) {
  const index_t cx = (nx + 1) / 2;
  sparse::CooD p(nx * nx, cx * cx);
  for (index_t j = 0; j < nx; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      p.push_back(j * nx + i, (j / 2) * cx + (i / 2), 1.0);
    }
  }
  return sparse::coo_to_csr(p);
}

Hierarchy build_hierarchy(vgpu::Device& dev, sparse::CsrD fine, index_t nx) {
  Hierarchy h;
  while (true) {
    Level lvl;
    lvl.a = std::move(fine);
    lvl.nx = nx;
    lvl.diag = sparse::extract_diagonal(lvl.a);
    lvl.a_plan = core::merge::spmv_plan(dev, lvl.a);
    h.setup_ms += lvl.a_plan.plan_ms();
    const bool coarsest = nx <= 8;
    if (!coarsest) {
      lvl.p = aggregation_p(nx);
      lvl.r = sparse::transpose(lvl.p);
      lvl.p_plan = core::merge::spmv_plan(dev, lvl.p);
      lvl.r_plan = core::merge::spmv_plan(dev, lvl.r);
      h.setup_ms += lvl.p_plan.plan_ms() + lvl.r_plan.plan_ms();
      sparse::CsrD ra;
      const auto s1 = core::merge::spgemm(dev, lvl.r, lvl.a, ra);
      sparse::CsrD coarse;
      const auto s2 = core::merge::spgemm(dev, ra, lvl.p, coarse);
      h.setup_ms += s1.modeled_ms() + s2.modeled_ms();
      fine = std::move(coarse);
      nx = (nx + 1) / 2;
      h.levels.push_back(std::move(lvl));
    } else {
      h.levels.push_back(std::move(lvl));
      break;
    }
  }
  return h;
}

/// Weighted-Jacobi smoother: x += w D^{-1} (b - A x).
double smooth(vgpu::Device& dev, const Level& lvl, const std::vector<double>& b,
              std::vector<double>& x, int sweeps) {
  double ms = 0.0;
  std::vector<double> ax(x.size());
  const double w = 0.8;
  for (int s = 0; s < sweeps; ++s) {
    ms += core::merge::spmv_execute(dev, lvl.a, x, ax, lvl.a_plan).modeled_ms();
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (lvl.diag[i] != 0.0) x[i] += w * (b[i] - ax[i]) / lvl.diag[i];
    }
  }
  return ms;
}

double vcycle(vgpu::Device& dev, const Hierarchy& h, std::size_t level,
              const std::vector<double>& b, std::vector<double>& x) {
  const Level& lvl = h.levels[level];
  double ms = smooth(dev, lvl, b, x, 2);
  if (level + 1 < h.levels.size()) {
    // Residual, restrict, recurse, prolong-correct, post-smooth.
    std::vector<double> ax(x.size()), res(x.size());
    ms += core::merge::spmv_execute(dev, lvl.a, x, ax, lvl.a_plan).modeled_ms();
    for (std::size_t i = 0; i < res.size(); ++i) res[i] = b[i] - ax[i];
    std::vector<double> rb(static_cast<std::size_t>(lvl.r.num_rows));
    ms += core::merge::spmv_execute(dev, lvl.r, res, rb, lvl.r_plan).modeled_ms();
    std::vector<double> cx(rb.size(), 0.0);
    ms += vcycle(dev, h, level + 1, rb, cx);
    std::vector<double> px(x.size());
    ms += core::merge::spmv_execute(dev, lvl.p, cx, px, lvl.p_plan).modeled_ms();
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += px[i];
    ms += smooth(dev, lvl, b, x, 2);
  } else {
    ms += smooth(dev, lvl, b, x, 30);  // coarsest: just relax hard
  }
  return ms;
}

}  // namespace

namespace {

int run_main(int argc, char** argv) {
  const index_t n = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 128;
  vgpu::Device dev;
  auto h = build_hierarchy(dev, workloads::poisson2d(n, n), n);
  std::printf("AMG hierarchy: %zu levels (", h.levels.size());
  for (const auto& lvl : h.levels) std::printf(" %d", lvl.a.num_rows);
  std::printf(" unknowns); Galerkin setup %.3f ms modeled\n", h.setup_ms);

  // b = A * ones; solve A x = b with AMG-preconditioned CG (plain
  // aggregation AMG is a weak standalone solver, but an excellent
  // preconditioner — the standard pairing).
  const auto& a0 = h.levels[0].a;
  const std::size_t un = static_cast<std::size_t>(a0.num_rows);
  std::vector<double> ones(un, 1.0), b(un);
  core::merge::spmv_execute(dev, a0, ones, b, h.levels[0].a_plan);

  auto dot = [](const std::vector<double>& u, const std::vector<double>& v) {
    double acc = 0;
    for (std::size_t i = 0; i < u.size(); ++i) acc += u[i] * v[i];
    return acc;
  };
  std::vector<double> x(un, 0.0), res = b, z(un, 0.0), p(un), ap(un);
  double cycle_ms = vcycle(dev, h, 0, res, z);  // z = M^{-1} r
  p = z;
  double rz = dot(res, z);
  const double b_norm = std::sqrt(dot(b, b));
  double rel = 1.0;

  // The PCG outer loop runs under the self-healing driver: its state is
  // scrubbed + verified on a cadence, and a detected bit flip rolls back
  // to the last clean checkpoint and rebuilds every level's SpMV plans.
  solver::ResilientConfig rcfg;
  rcfg.max_iterations = 100;
  rcfg.tolerance = 1e-10;
  solver::ResilientSolver driver(dev, rcfg);
  driver.track("x", x);
  driver.track("r", res);
  driver.track("z", z);
  driver.track("p", p);
  driver.track("Ap", ap);
  driver.track_scalar("r.z", rz);
  driver.track_scalar("rel", rel);
  const auto report = driver.run(
      [&](int) {
        double step_ms =
            core::merge::spmv_execute(dev, a0, p, ap, h.levels[0].a_plan)
                .modeled_ms();
        const double alpha = rz / dot(p, ap);
        for (std::size_t i = 0; i < un; ++i) {
          x[i] += alpha * p[i];
          res[i] -= alpha * ap[i];
        }
        rel = std::sqrt(dot(res, res)) / b_norm;
        std::fill(z.begin(), z.end(), 0.0);
        step_ms += vcycle(dev, h, 0, res, z);
        const double rz_new = dot(res, z);
        const double beta = rz_new / rz;
        rz = rz_new;
        for (std::size_t i = 0; i < un; ++i) p[i] = z[i] + beta * p[i];
        cycle_ms += step_ms;
        return solver::StepResult{rel, step_ms};
      },
      [&] {
        for (auto& lvl : h.levels) {
          lvl.a_plan = core::merge::spmv_plan(dev, lvl.a);
          if (lvl.p.num_rows > 0) {
            lvl.p_plan = core::merge::spmv_plan(dev, lvl.p);
            lvl.r_plan = core::merge::spmv_plan(dev, lvl.r);
          }
        }
      });
  const int iters = report.iterations;
  double err = 0.0;
  for (const double v : x) err = std::max(err, std::abs(v - 1.0));
  std::printf("AMG-PCG: %d iterations to ||r||/||b|| = %.2e; max |x - 1| = %.2e\n",
              iters, rel, err);
  std::printf("modeled kernel time: %.3f ms per iteration (V-cycle + SpMV)\n",
              cycle_ms / (iters + 1));
  if (report.detections > 0) {
    std::printf("resilience: %d corruption(s) detected, %d rollback(s), "
                "%d plan rebuild(s)\n",
                report.detections, report.restores, report.plan_rebuilds);
  }
  return (rel <= 1e-10 && err < 1e-7) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return mps::util::guarded_main("amg_vcycle",
                                 [&] { return run_main(argc, argv); });
}
