// Triangle counting via masked SpGEMM: triangles(G) = sum((A*A) .* A) / 6
// for a symmetric 0/1 adjacency matrix.  The mask is computed with the
// balanced-path set INTERSECTION over packed (row, col) tuple keys — the
// same primitive family SpAdd's union uses, applied the other way.
//
//   $ ./examples/triangle_count [rmat_scale]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/spgemm.hpp"
#include "primitives/set_ops.hpp"
#include "sparse/convert.hpp"
#include "sparse/packed_key.hpp"
#include "sparse/stats.hpp"
#include "vgpu/device.hpp"
#include "workloads/generators.hpp"
#include "util/main_guard.hpp"

namespace {

// Reference: for each edge (u, v), count common neighbours by sorted-list
// intersection.
long long triangles_reference(const mps::sparse::CsrD& a) {
  using namespace mps;
  long long total = 0;
  for (index_t u = 0; u < a.num_rows; ++u) {
    for (index_t k = a.row_offsets[static_cast<std::size_t>(u)];
         k < a.row_offsets[static_cast<std::size_t>(u) + 1]; ++k) {
      const index_t v = a.col[static_cast<std::size_t>(k)];
      // |N(u) ∩ N(v)|
      index_t i = a.row_offsets[static_cast<std::size_t>(u)];
      index_t j = a.row_offsets[static_cast<std::size_t>(v)];
      const index_t ie = a.row_offsets[static_cast<std::size_t>(u) + 1];
      const index_t je = a.row_offsets[static_cast<std::size_t>(v) + 1];
      while (i < ie && j < je) {
        const index_t ci = a.col[static_cast<std::size_t>(i)];
        const index_t cj = a.col[static_cast<std::size_t>(j)];
        if (ci == cj) {
          ++total;
          ++i;
          ++j;
        } else if (ci < cj) {
          ++i;
        } else {
          ++j;
        }
      }
    }
  }
  return total / 6;
}

}  // namespace

namespace {

int run_main(int argc, char** argv) {
  using namespace mps;
  const int scale = argc > 1 ? std::atoi(argv[1]) : 11;

  // Symmetric, loop-free 0/1 adjacency from an R-MAT graph.
  auto g = workloads::rmat(scale, 8, 0.57, 0.19, 0.19, /*seed=*/99);
  {
    auto coo = sparse::csr_to_coo(g);
    sparse::CooD sym(g.num_rows, g.num_cols);
    for (index_t i = 0; i < coo.nnz(); ++i) {
      const index_t r = coo.row[static_cast<std::size_t>(i)];
      const index_t c = coo.col[static_cast<std::size_t>(i)];
      if (r == c) continue;
      sym.push_back(r, c, 1.0);
      sym.push_back(c, r, 1.0);
    }
    sym.canonicalize();
    for (auto& v : sym.val) v = 1.0;  // 0/1 adjacency
    g = sparse::coo_to_csr(sym);
  }
  const auto stats = sparse::compute_stats(g);
  std::printf("graph: %d vertices, %lld edges (avg degree %.1f, max %d)\n",
              g.num_rows, stats.nnz / 2, stats.avg_row, stats.max_row);

  vgpu::Device device;

  // Step 1: C = A * A counts paths of length two between every pair.
  sparse::CsrD c;
  const auto gemm = core::merge::spgemm(device, g, g, c);

  // Step 2: mask C by A's pattern with a balanced-path intersection over
  // packed tuple keys; the combiner keeps C's path count.
  const auto c_coo = sparse::csr_to_coo(c);
  const auto a_coo = sparse::csr_to_coo(g);
  std::vector<std::uint64_t> kc(static_cast<std::size_t>(c_coo.nnz()));
  std::vector<std::uint64_t> ka(static_cast<std::size_t>(a_coo.nnz()));
  for (std::size_t i = 0; i < kc.size(); ++i) {
    kc[i] = sparse::pack_key(c_coo.row[i], c_coo.col[i]);
  }
  for (std::size_t i = 0; i < ka.size(); ++i) {
    ka[i] = sparse::pack_key(a_coo.row[i], a_coo.col[i]);
  }
  const auto masked = primitives::device_set_op<std::uint64_t, double>(
      device, kc, c_coo.val, ka, a_coo.val, primitives::SetOp::kIntersection,
      [](double paths, double) { return paths; });

  double sum = 0.0;
  for (const double v : masked.vals) sum += v;
  const long long triangles = static_cast<long long>(sum + 0.5) / 6;

  std::printf("A*A: %lld products -> %d pairs; mask kept %zu edges\n",
              gemm.num_products, c.nnz(), masked.keys.size());
  std::printf("triangles = %lld  (modeled: %.3f ms spgemm + %.3f ms mask)\n",
              triangles, gemm.modeled_ms(), masked.modeled_ms);

  const long long expect = triangles_reference(g);
  if (triangles != expect) {
    std::printf("MISMATCH: reference counts %lld\n", expect);
    return 1;
  }
  std::puts("verified against the per-edge intersection reference.");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return mps::util::guarded_main("triangle_count",
                                 [&] { return run_main(argc, argv); });
}
